"""The named scenario catalog: curated stress cases beyond Fig. 8.

Each entry is a zero-argument builder returning a ready-to-run
:class:`repro.campaigns.ScenarioSpec` (or a :class:`Sweep` of them),
registered under a stable name with :func:`register_scenario`.  The
catalog is the single source the benchmarks, the
``examples/beyond_cosmic_rays.py`` driver, and the docs table draw
from, so a scenario added here shows up everywhere at once (and
``tools/check_docs.py`` fails CI if the README table goes stale).

``catalog_spec(name, **overrides)`` materializes an entry; overrides
apply to the spec (or a sweep's base spec), so callers can cheapen the
shot request without re-declaring the timeline.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Union

from repro.campaigns.specs import ScenarioSpec, Sweep
from repro.scenarios.model import Scenario, ScenarioError, StrikeEvent

CatalogEntry = Union[ScenarioSpec, Sweep]

#: name -> zero-argument spec builder, in registration order.
_CATALOG: dict[str, Callable[[], CatalogEntry]] = {}


def register_scenario(name: str):
    """Register a zero-argument builder under a stable catalog name."""
    def decorate(fn: Callable[[], CatalogEntry]):
        if name in _CATALOG:
            raise ScenarioError(f"scenario {name!r} is already registered")
        _CATALOG[name] = fn
        return fn
    return decorate


def scenario_catalog() -> dict[str, str]:
    """Catalog name -> one-line description, in registration order."""
    return {name: (fn.__doc__ or "").strip().splitlines()[0]
            for name, fn in _CATALOG.items()}


def catalog_spec(name: str, **overrides) -> CatalogEntry:
    """Materialize the named entry, applying spec-field overrides.

    Overrides land on the spec itself — or, for a sweep entry, on the
    sweep's base spec — so e.g. ``shots=50`` cheapens any entry.
    """
    fn = _CATALOG.get(name)
    if fn is None:
        raise ScenarioError(
            f"unknown scenario {name!r} (choices: {sorted(_CATALOG)})")
    spec = fn()
    if not overrides:
        return spec
    if isinstance(spec, Sweep):
        return Sweep(base=dataclasses.replace(spec.base, **overrides),
                     axes=spec.axes, derive_seeds=spec.derive_seeds)
    return dataclasses.replace(spec, **overrides)


# ----------------------------------------------------------------------
# The entries
# ----------------------------------------------------------------------
@register_scenario("overlapping-strikes")
def _overlapping_strikes() -> ScenarioSpec:
    """Two strikes whose damage boxes overlap mid-lattice.

    The paper's model is one cosmic-ray event at a time; two rays
    landing close together produce a merged high-error patch where the
    zero-distance shortcut of the single-region decoder is invalid.
    Exercises :class:`repro.decoding.MultiRegionDistanceModel` through
    the informed memory engine.
    """
    return ScenarioSpec(
        distance=7, p=0.01, shots=400, mode="memory", informed=True,
        cycles=20,
        scenario=Scenario(events=(
            StrikeEvent(onset=0, size=3, row=1, col=1, p_ano=0.5),
            StrikeEvent(onset=4, size=3, row=2, col=2, p_ano=0.3),
        )))


@register_scenario("back-to-back-strikes")
def _back_to_back_strikes() -> ScenarioSpec:
    """A second strike arriving while the first is still decaying.

    Stresses the detection unit's mask-clear logic: the first burst
    ends exactly as the second begins at the same position, so a
    detector that resets on the first decay edge must re-arm in time.
    """
    return ScenarioSpec(
        distance=9, p=0.005, shots=40, mode="detection",
        c_win=100, n_th=8,
        scenario=Scenario(events=(
            StrikeEvent(onset=200, duration=80, size=4, row=2, col=2,
                        p_ano=0.5),
            StrikeEvent(onset=280, duration=80, size=4, row=2, col=2,
                        p_ano=0.5),
        )))


@register_scenario("heterogeneous-base-rate")
def _heterogeneous_base_rate() -> ScenarioSpec:
    """A static hot corner: one quadrant runs at triple the base rate.

    No strikes at all — the scenario is a spatial per-qubit error-rate
    field, modelling a chip whose fabrication left one corner worse.
    """
    rows, cols = 4, 5  # distance 5: (d-1) x d measure-qubit grid
    field = tuple(
        tuple(3.0 if (r < 2 and c < 2) else 1.0 for c in range(cols))
        for r in range(rows))
    return ScenarioSpec(
        distance=5, p=0.01, shots=800, mode="memory", cycles=10,
        scenario=Scenario(rate_field=field))


@register_scenario("drifting-base-rate")
def _drifting_base_rate() -> ScenarioSpec:
    """The whole chip warming up: base rate ramps 1x -> 2.5x over time.

    A temporal drift profile with no strikes — calibration decay rather
    than a burst.  The last profile entry holds for the remaining
    cycles.
    """
    return ScenarioSpec(
        distance=5, p=0.008, shots=800, mode="memory", cycles=12,
        scenario=Scenario(drift=(1.0, 1.25, 1.5, 1.75, 2.0, 2.5)))


@register_scenario("leakage-burst")
def _leakage_burst() -> ScenarioSpec:
    """A long-lived single-site leakage burst (ion-trap regime).

    One size-1 event lasting far longer than a cosmic-ray transient,
    tagged with the ``leakage`` burst source from
    :mod:`repro.noise.leakage` (recommended policy: relocate, not
    expand).  Position is re-drawn per trial.
    """
    return ScenarioSpec(
        distance=9, p=0.005, shots=40, mode="detection",
        c_win=100, n_th=8,
        scenario=Scenario(events=(
            StrikeEvent(onset=200, duration=300, size=1, p_ano=0.3,
                        source="leakage"),
        )))


@register_scenario("decoder-frontier")
def _decoder_frontier() -> Sweep:
    """Greedy vs exact MWPM on one anomalous-patch memory campaign.

    A two-point sweep over the decoder family, same seed derivation and
    timeline, quantifying the accuracy the hardware-friendly greedy
    decoder gives up under burst noise (paper Sec. V trade-off).
    """
    base = ScenarioSpec(
        distance=5, p=0.01, shots=200, mode="memory", informed=True,
        cycles=10,
        scenario=Scenario(events=(
            StrikeEvent(onset=2, size=2, row=1, col=1, p_ano=0.4),
        )))
    return Sweep(base=base, axes={"decoder": ("greedy", "mwpm")})
