"""The executor seam: where a campaign's chunks actually run.

A campaign is a list of independent chunks ``(index, size, child
SeedSequence)`` — independent because the per-chunk ``SeedSequence``
contract (PR 1) makes every chunk's outcome a pure function of
``(campaign seed, batch_size, chunk index)``, never of where or when it
runs.  An :class:`Executor` maps that list to an in-order stream of
``(outcome array, cache stats)``; the campaign runner does the rest
(checkpointing, streaming estimates, early stop).

Three implementations:

* :class:`InlineExecutor` — this process, one chunk at a time.  With
  ``whole_request=True`` (the default) the chunk size defaults to the
  whole request, memory-capped by
  :func:`repro.sim.batch.default_chunk_shots` — the modern ``workers=0``
  path.
* :class:`ProcessPoolExecutor` — today's :class:`~repro.sim.batch`
  ``multiprocessing`` fan-out: per-worker kernel/decoder reuse, ordered
  ``imap`` streaming.
* :class:`DistributedExecutor` — the multi-host seam.  Subclasses
  implement :meth:`DistributedExecutor.dispatch` (or override
  ``run_chunks`` wholesale); the placement-independence contract above
  is exactly what makes remote dispatch safe (results merge by chunk
  index, bit-identical to a local run).  The reference transport is
  :class:`repro.campaigns.distributed.WorkQueueExecutor` — a
  fault-tolerant filesystem work queue served by
  ``python -m repro worker``.
"""

from __future__ import annotations

import collections
import itertools
import multiprocessing
from typing import Iterator, Optional

import numpy as np

from repro.sim.batch import _batch_fn, _cache_stats, _pool_init, _pool_run


class Executor:
    """Maps a kernel over a campaign's chunk plan, preserving order."""

    #: Short name recorded in provenance blocks.
    name = "executor"

    #: Whether an unset spec ``batch_size`` should default to the
    #: whole request (memory-capped) rather than the kernel's small
    #: fan-out default.  True only for the in-process path.
    whole_request = False

    def bind(self, spec, *, batch_size: int, shots: int,
             indices: list) -> None:
        """Hand the executor the campaign context before ``run_chunks``.

        The runner calls this once per campaign, immediately before
        :meth:`run_chunks`: ``spec`` is the campaign spec, ``batch_size``
        the *effective* chunk size, ``shots`` the total request, and
        ``indices`` the plan index of each task that ``run_chunks`` will
        receive (resumed chunks are absent).  In-process executors need
        none of it (the default is a no-op); a transport executor needs
        all of it — a remote worker rebuilds the kernel from the spec
        JSON and re-derives its chunk seed from
        ``(seed, batch_size, index)`` via
        :func:`repro.sim.batch.chunk_plan`.
        """

    def accounting(self) -> Optional[dict]:
        """Supervisor accounting for the most recent ``run_chunks``.

        ``None`` for executors with nothing to report; a transport
        returns its robustness counters (attempts, re-dispatches,
        quarantined chunks, ...) which the runner surfaces through the
        :class:`~repro.campaigns.results.Provenance` block.
        """
        return None

    def run_chunks(self, kernel, packing: str,
                   tasks: list) -> Iterator[tuple[np.ndarray, tuple]]:
        """Yield ``(outcomes, cache_stats)`` per task, in task order.

        ``tasks`` is a sequence of ``(size, numpy.random.SeedSequence)``.
        Implementations may compute lazily — the consumer stops
        iterating when a campaign early-stops, so implementations must
        not eagerly run every task up front — but must preserve order,
        and must derive each chunk's generator as
        ``np.random.default_rng(child)`` so outcomes stay placement
        independent.
        """
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class InlineExecutor(Executor):
    """Run every chunk in this process, reusing one prepared kernel.

    ``whole_request`` picks the unset-``batch_size`` default: ``True``
    (default) batches the whole request per chunk (memory-capped — the
    legacy ``workers=0`` behaviour), ``False`` keeps the kernel's small
    fan-out chunk size (the legacy ``workers=1`` behaviour).
    """

    name = "inline"

    def __init__(self, whole_request: bool = True):
        self.whole_request = whole_request

    def run_chunks(self, kernel, packing, tasks):
        kernel.prepare()
        run = _batch_fn(kernel, packing)
        for size, child in tasks:
            before = _cache_stats(kernel)
            outcome = run(size, np.random.default_rng(child))
            after = _cache_stats(kernel)
            yield outcome, tuple(a - b for a, b in zip(after, before, strict=True))


class ProcessPoolExecutor(Executor):
    """Fan chunks over a ``multiprocessing`` pool of ``workers``.

    Each worker builds its kernel (and decoder, scratch arena, matching
    cache) once and reuses it for every chunk it is handed; results
    stream back in task order.

    Submissions are windowed: at most ``max_inflight`` chunks (default
    ``2 * workers``) are outstanding at any moment, and the next task is
    pulled from ``tasks`` only when a finished chunk is consumed.  An
    early-stopped campaign therefore wastes at most one window of
    compute — the pre-PR-8 ``pool.imap(list(tasks))`` submitted *every*
    chunk up front, so a ``target_rel_width`` campaign that stopped
    after 3 chunks still churned through the whole plan — and closing
    the result stream terminates the pool promptly.
    """

    name = "process-pool"

    def __init__(self, workers: int, max_inflight: Optional[int] = None):
        if workers < 2:
            raise ValueError(
                "ProcessPoolExecutor needs workers >= 2; use "
                "InlineExecutor for the in-process path")
        if max_inflight is not None and max_inflight < workers:
            raise ValueError("max_inflight must be >= workers")
        self.workers = workers
        self.max_inflight = (max_inflight if max_inflight is not None
                             else 2 * workers)

    def describe(self) -> str:
        return f"{self.name}({self.workers})"

    def run_chunks(self, kernel, packing, tasks):
        it = iter(tasks)
        with multiprocessing.Pool(self.workers, initializer=_pool_init,
                                  initargs=(kernel, packing)) as pool:
            inflight = collections.deque(
                pool.apply_async(_pool_run, (task,))
                for task in itertools.islice(it, self.max_inflight))
            while inflight:
                result = inflight.popleft().get()
                for task in itertools.islice(it, 1):
                    inflight.append(pool.apply_async(_pool_run, (task,)))
                yield result
        # `with` tears the pool down via terminate() — on normal
        # exhaustion and on generator close alike, so an early stop
        # never waits for chunks the campaign no longer needs.


class DistributedExecutor(Executor):
    """Multi-host fan-out seam (interface; transport not included).

    The contract a transport must honour is small because the shot
    engine already did the hard part:

    * a chunk is fully described by ``(spec JSON, chunk index, size,
      child SeedSequence state)`` — the kernel is rebuilt on the remote
      host from the spec, exactly as :func:`repro.sim.batch._pool_init`
      rebuilds it in a pool worker;
    * outcomes are placement independent (per-chunk ``SeedSequence``,
      PR 1), so any host may run any chunk and results merge by index,
      bit-identical to a local run;
    * the checkpoint shard format (:mod:`repro.campaigns.checkpoint`)
      doubles as the wire format: a remote worker's finished chunk is
      one JSONL record keyed by ``(spec hash, chunk index)``.

    Subclasses implement :meth:`dispatch` (ship one chunk, block for its
    record); :meth:`run_chunks` then behaves like any executor.  The
    reference implementation of the protocol is
    :class:`repro.campaigns.distributed.WorkQueueExecutor`, which
    overrides ``run_chunks`` wholesale to supervise a filesystem work
    queue with lease-expiry re-dispatch, retry with backoff, poison-
    chunk quarantine, and inline drain when the worker pool vanishes.
    """

    name = "distributed"

    def dispatch(self, task_index: int, size: int,
                 child: np.random.SeedSequence) -> tuple[np.ndarray, tuple]:
        """Run one chunk somewhere and return ``(outcomes, cache_stats)``."""
        raise NotImplementedError(
            "DistributedExecutor is an interface: subclass it and "
            "implement dispatch() over your transport")

    def run_chunks(self, kernel, packing, tasks):
        for index, (size, child) in enumerate(tasks):
            yield self.dispatch(index, size, child)


def default_executor(workers: Optional[int] = None) -> Executor:
    """The executor the environment asks for (``REPRO_WORKERS``).

    ``workers`` overrides the environment: ``0`` is the in-process
    whole-request path, ``1`` the in-process fan-out-sized path, and
    anything larger a process pool.
    """
    from repro import config
    if workers is None:
        workers = config.workers()
    if workers > 1:
        return ProcessPoolExecutor(workers)
    return InlineExecutor(whole_request=(workers == 0))
