"""Ablations of Q3DE's design choices (called out in DESIGN.md).

1. **Matching-queue batch size** -- Sec. VI-C claims total rollback
   buffer memory is minimized at ``c_bat = sqrt(2 c_win)``.
2. **Decoder family** -- the architecture targets the greedy decoder for
   its constant-time distance queries; how much accuracy does it give up
   against exact MWPM (Blossom)?
3. **Detection-driven vs oracle re-execution** -- Fig. 8 idealizes
   "with rollback" as knowing the true region; the end-to-end run uses
   the *detected* region and measures what the estimation error costs.
"""

import math
import time

import numpy as np
import pytest

from repro.arch.buffers import optimal_batch_cycles
from repro.sim.endtoend import EndToEndExperiment
from repro.sim.memory import logical_error_rate

from _common import emit_json, mc_samples, mc_workers, print_table


def total_buffer_bits(node_count: int, c_win: int, c_bat: int) -> float:
    """Syndrome queue (c_win + c_bat layers) + matching queue batches."""
    return (node_count * (c_win + c_bat)
            + node_count * math.ceil(c_win / c_bat))


@pytest.mark.benchmark(group="ablation")
def bench_ablation_batch_size(benchmark):
    """Memory vs c_bat: the sqrt(2 c_win) rule must sit at the minimum."""
    c_win, nodes = 300, 2 * 31 * 31

    def sweep():
        candidates = sorted({1, 2, 5, 10, optimal_batch_cycles(c_win),
                             40, 80, 150, 300})
        return [(c, total_buffer_bits(nodes, c_win, c)) for c in candidates]

    curve = benchmark(sweep)
    print_table("Ablation: rollback buffer memory vs matching-queue batch",
                ["c_bat", "total bits"],
                [[c, f"{bits:,.0f}"] for c, bits in curve])
    best_cbat = min(curve, key=lambda cb: cb[1])[0]

    emit_json("batch", "ablation_batch_size", {
        "buffer_bits": {f"c_bat_{c:03d}": bits for c, bits in curve},
        "optimal_c_bat": optimal_batch_cycles(c_win),
        "c_win": c_win,
    })
    assert best_cbat == optimal_batch_cycles(c_win)


@pytest.mark.benchmark(group="ablation")
def bench_ablation_decoder_family(benchmark):
    """Greedy vs exact MWPM accuracy at equal noise."""
    samples = mc_samples()
    d, ps = 7, [8e-3, 1.5e-2, 2.5e-2]

    def run():
        start = time.perf_counter()
        rows = []
        for p in ps:
            greedy = logical_error_rate(d, p, samples, decoder="greedy",
                                        seed=31,
                                        workers=mc_workers()).per_cycle
            exact = logical_error_rate(d, p, samples, decoder="mwpm",
                                       seed=32,
                                       workers=mc_workers()).per_cycle
            rows.append([p, greedy, exact])
        return rows, time.perf_counter() - start

    rows, wall = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(f"Ablation: decoder accuracy (d={d})",
                ["p", "greedy p_L/cycle", "MWPM p_L/cycle"], rows)

    emit_json("batch", "ablation_decoder_family", {
        "per_cycle_rates": {
            f"d{d}_p{p}_{name}": rate
            for p, greedy, exact in rows
            for name, rate in (("greedy", greedy), ("mwpm", exact))
        },
        "samples_per_point": samples,
        "wall_clock_s": wall,
    })
    # Exact matching never loses to greedy beyond sampling noise.
    for _, greedy, exact in rows:
        assert exact <= greedy + 3.0 / (samples * d)


@pytest.mark.benchmark(group="ablation")
def bench_ablation_detected_vs_oracle(benchmark):
    """End-to-end: what does imperfect region estimation cost?"""
    shots = max(20, mc_samples() // 8)
    exp = EndToEndExperiment(13, 0.005, anomaly_size=4, onset=120,
                             cycles=300, c_win=80, n_th=8)

    def run():
        start = time.perf_counter()
        out = exp.run(shots, np.random.default_rng(7),
                      workers=mc_workers())
        return out, time.perf_counter() - start

    res, wall = benchmark.pedantic(run, rounds=1, iterations=1)
    rates = res.rates()
    print_table(
        "Ablation: exposure-window failure rate by decoding knowledge",
        ["strategy", "failure rate"],
        [["naive (no rollback)", rates["naive"]],
         ["detected region (Q3DE)", rates["detected"]],
         ["oracle region", rates["oracle"]],
         ["detection rate", res.detection_rate],
         ["mean latency (cycles)", res.mean_latency]])

    emit_json("batch", "ablation_detected_vs_oracle", {
        "failure_rates": dict(rates),
        "detection_rate": res.detection_rate,
        "mean_latency_cycles": res.mean_latency,
        "shots": shots,
        "wall_clock_s": wall,
    })
    assert res.detection_rate > 0.7
    assert rates["detected"] <= rates["naive"] + 0.05


def smoke() -> None:
    """One tiny grid point (bench_smoke marker: import-rot guard)."""
    c_bat = optimal_batch_cycles(300)
    assert total_buffer_bits(100, 300, c_bat) > 0
    est = logical_error_rate(5, 2e-2, 8, decoder="greedy", seed=2,
                             workers=1)
    assert est.samples == 8
