"""Effective logical error rate under MBBEs (paper Eq. 1, Sec. III-A).

With strikes of frequency ``f_ano`` lasting ``tau_ano``, the time-average
logical error rate per cycle is::

    (1 - f_ano tau_ano) p_L + f_ano tau_ano p_L_ano

and the *increase ratio* contributed by MBBEs is
``f_ano tau_ano p_L_ano / p_L`` -- about 100x for the McEwen et al.
parameters, which is the paper's motivating observation.
"""

from __future__ import annotations


def effective_logical_error_rate(
    p_l: float,
    p_l_ano: float,
    frequency_hz: float,
    lifetime_s: float,
) -> float:
    """Eq. (1): duty-cycle average of normal and anomalous rates."""
    _check_rates(p_l, p_l_ano)
    duty = frequency_hz * lifetime_s
    if not 0.0 <= duty <= 1.0:
        raise ValueError("f_ano * tau_ano must be a fraction of time")
    return (1.0 - duty) * p_l + duty * p_l_ano


def mbbe_increase_ratio(
    p_l: float,
    p_l_ano: float,
    frequency_hz: float,
    lifetime_s: float,
) -> float:
    """The MBBE contribution relative to the burst-free rate."""
    _check_rates(p_l, p_l_ano)
    if p_l == 0.0:
        raise ValueError("p_l must be positive for a ratio")
    return frequency_hz * lifetime_s * p_l_ano / p_l


def _check_rates(p_l: float, p_l_ano: float) -> None:
    if not 0.0 <= p_l <= 1.0 or not 0.0 <= p_l_ano <= 1.0:
        raise ValueError("logical error rates must be probabilities")
