"""Bit-packed shot storage: 64 Monte-Carlo shots per uint64 word.

The batched shot engine's float sampling path materializes 8 bytes per
sampled Bernoulli bit, so memory — not CPU — caps campaign size.  This
module is the Stim-style answer: shots live along a packed leading axis
(word ``w``, lane ``b`` holds shot ``64 * w + b``, LSB first), so a
boolean batch of shape ``(shots, T, rows, cols)`` becomes a uint64 array
of shape ``(ceil(shots / 64), T, rows, cols)`` and every element-wise
XOR over the batch turns into one word-wise XOR over 64 shots.

Conventions:

* the packed axis is always axis 0;
* lanes are LSB-first: lane ``b`` of a word is ``(word >> b) & 1``;
* tail lanes of the final word (shots not divisible by 64) are
  zero-filled on packing and must never be read back as shots.
"""

from __future__ import annotations

import numpy as np

from repro.sim import backend

#: Shots per packed word.
WORD_BITS = 64


def word_count(shots: int) -> int:
    """Number of uint64 words needed to hold ``shots`` lanes."""
    if shots < 1:
        raise ValueError("need at least one shot")
    return -(-shots // WORD_BITS)


def pack_shots(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(shots, ...)`` array into ``(words, ...)`` uint64.

    Lane ``s % 64`` of word ``s // 64`` holds shot ``s``; tail lanes of
    the final word are zero.
    """
    xp = backend.get_array_module(bits)
    # Thresholding up front keeps any-nonzero-is-1 packbits semantics
    # on every backend and alignment.
    bits = xp.asarray(bits).astype(bool, copy=False)
    shots = bits.shape[0]
    words = word_count(shots)
    if shots != words * WORD_BITS:
        pad = xp.zeros((words * WORD_BITS - shots,) + bits.shape[1:],
                       dtype=bool)
        bits = xp.concatenate([bits, pad], axis=0)
    lanes_first = bits.reshape((words, WORD_BITS) + bits.shape[1:])
    if xp is not np:  # generic lane fold (CuPy packbits lacks bitorder)
        out = xp.zeros((words,) + bits.shape[1:], dtype=xp.uint64)
        for b in range(WORD_BITS):
            out |= lanes_first[:, b].astype(xp.uint64) << xp.uint64(b)
        return out
    # (words, 64, ...) -> (words, ..., 64): lanes must be the fastest
    # axis so the 8 packed bytes of each word are memory-adjacent.
    # Materializing the transpose before packbits matters: packbits on a
    # strided view falls back to a buffered per-element walk that is
    # several times slower than transpose-copy + contiguous packing.
    lanes_last = np.ascontiguousarray(np.moveaxis(lanes_first, 1, -1))
    packed = np.packbits(lanes_last, axis=-1, bitorder="little")
    return packed.view("<u8")[..., 0]


def unpack_shots(words: np.ndarray, shots: int) -> np.ndarray:
    """Invert :func:`pack_shots`: ``(words, ...)`` uint64 to bool shots."""
    xp = backend.get_array_module(words)
    words = xp.asarray(words, dtype="<u8")
    n_words = words.shape[0]
    if shots > n_words * WORD_BITS:
        raise ValueError("more shots requested than lanes stored")
    if xp is not np:  # generic lane spread
        bits = xp.zeros((n_words * WORD_BITS,) + words.shape[1:],
                        dtype=bool)
        for b in range(WORD_BITS):
            bits[b::WORD_BITS] = (words >> xp.uint64(b)) & xp.uint64(1)
        return bits[:shots]
    as_bytes = np.ascontiguousarray(words[..., None]).view(np.uint8)
    lanes_last = np.unpackbits(as_bytes, axis=-1, bitorder="little")
    bits = np.moveaxis(lanes_last, -1, 1).reshape(
        (n_words * WORD_BITS,) + words.shape[1:])
    return bits[:shots].astype(bool)


def lane(words: np.ndarray, shot: int) -> np.ndarray:
    """Extract one shot's bits as a uint8 0/1 array (packed axis dropped).

    This is the only per-shot unpacking the packed kernels perform: one
    lane of the already-extracted syndrome stream, never the raw batch.
    """
    xp = backend.get_array_module(words)
    w, b = divmod(shot, WORD_BITS)
    return ((words[w] >> xp.uint64(b)) & xp.uint64(1)).astype(xp.uint8)


def lane_bit(words: np.ndarray, shot: int) -> int:
    """One shot's bit of a ``(words,)`` array of packed parity words."""
    w, b = divmod(shot, WORD_BITS)
    return (int(words[w]) >> b) & 1


def _popcount_generic(words: np.ndarray) -> np.ndarray:
    """SWAR popcount in word-wise ops (any backend)."""
    xp = backend.get_array_module(words)
    v = xp.asarray(words, dtype=xp.uint64).copy()
    m1 = xp.uint64(0x5555555555555555)
    m2 = xp.uint64(0x3333333333333333)
    m4 = xp.uint64(0x0F0F0F0F0F0F0F0F)
    h = xp.uint64(0x0101010101010101)
    v -= (v >> xp.uint64(1)) & m1
    v = (v & m2) + ((v >> xp.uint64(2)) & m2)
    v = (v + (v >> xp.uint64(4))) & m4
    return ((v * h) >> xp.uint64(56)).astype(xp.int64)


if hasattr(np, "bitwise_count"):  # NumPy >= 2.0
    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-word set-bit counts (number of active shots per word)."""
        if backend.get_array_module(words) is not np:
            return _popcount_generic(words)
        return np.bitwise_count(words)
else:  # pragma: no cover - exercised only on NumPy < 2.0
    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-word set-bit counts (number of active shots per word)."""
        return _popcount_generic(words)
