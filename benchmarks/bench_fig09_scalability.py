"""Fig. 9: required qubit density vs chip area for p_L < 1e-10.

Paper setup: p/p_th = 0.1, 1 us cycles, baseline d_ano=4, f_ano=0.1 Hz,
tau_ano=25 ms, c_lat=30; three panels sweep anomaly size, error duration,
and anomaly frequency.  Expected shape: without rays the required density
falls as 1/area; with rays the baseline (full-lifetime exposure at
d - 2c) needs far more density than Q3DE (c_lat-cycle exposure at d - c),
with up to ~10x qubit-count savings around density ratio ten.
"""

import pytest

from repro.scaling.model import (
    ScalingParameters,
    density_curve,
    sweep_anomaly_size,
    sweep_duration,
    sweep_frequency,
)

from _common import print_table, scale

AREAS = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]


def _params():
    horizon = int(20_000_000 * scale())
    return ScalingParameters(horizon_cycles=horizon)


@pytest.mark.benchmark(group="fig9")
def bench_fig9_anomaly_size_panel(benchmark):
    """Left panel: one curve per anomaly size, Q3DE vs baseline."""
    params = _params()
    sizes = [1, 2, 4]

    def run():
        return (sweep_anomaly_size(params, sizes, AREAS, use_q3de=True),
                sweep_anomaly_size(params, sizes, AREAS, use_q3de=False))

    q3de, base = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for i, area in enumerate(AREAS):
        row = [area]
        for size in sizes:
            row.append(q3de[size][i])
            row.append(base[size][i])
        rows.append(row)
    header = ["area"] + [f"{arch} s={s}" for s in sizes
                         for arch in ("Q3DE", "base")]
    header = ["area"]
    for s in sizes:
        header += [f"Q3DE s={s}", f"base s={s}"]
    print_table("Fig. 9 (left): required density ratio (None = >max)",
                header, rows)

    for size in sizes:
        for q, b in zip(q3de[size], base[size]):
            if q is not None and b is not None:
                assert q <= b * 1.01


@pytest.mark.benchmark(group="fig9")
def bench_fig9_duration_panel(benchmark):
    """Middle panel: baseline vs error-duration factor, Q3DE reference."""
    params = _params()
    factors = [1.0, 0.1, 0.01]

    def run():
        base = sweep_duration(params, factors, AREAS, use_q3de=False)
        q3de = density_curve(params, AREAS, use_q3de=True)
        return base, q3de

    base, q3de = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for i, area in enumerate(AREAS):
        rows.append([area, q3de[i]] + [base[f][i] for f in factors])
    print_table(
        "Fig. 9 (middle): required density ratio vs error duration",
        ["area", "Q3DE"] + [f"base x{f}" for f in factors], rows)

    # Shorter bursts shrink the baseline's requirement toward Q3DE's.
    for i in range(len(AREAS)):
        vals = [base[f][i] for f in factors if base[f][i] is not None]
        assert vals == sorted(vals, reverse=True)


@pytest.mark.benchmark(group="fig9")
def bench_fig9_frequency_panel(benchmark):
    """Right panel: both architectures vs anomaly-frequency factor."""
    params = _params()
    factors = [1.0, 0.1, 0.01]

    def run():
        return (sweep_frequency(params, factors, AREAS, use_q3de=True),
                sweep_frequency(params, factors, AREAS, use_q3de=False))

    q3de, base = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for i, area in enumerate(AREAS):
        row = [area]
        for f in factors:
            row += [q3de[f][i], base[f][i]]
        rows.append(row)
    header = ["area"]
    for f in factors:
        header += [f"Q3DE x{f}", f"base x{f}"]
    print_table(
        "Fig. 9 (right): required density ratio vs anomaly frequency",
        header, rows)

    # Q3DE advantage shrinks as rays get rarer.
    for f in factors:
        for q, b in zip(q3de[f], base[f]):
            if q is not None and b is not None:
                assert q <= b * 1.01


def smoke() -> None:
    """One tiny grid point (bench_smoke marker: import-rot guard)."""
    params = ScalingParameters(horizon_cycles=200_000)
    curve = density_curve(params, [4.0], use_q3de=True)
    assert len(curve) == 1
