"""The campaign service: cache, coalescing, partials, fairness, HTTP.

Most tests drive :class:`repro.service.ServiceApp` directly — it is the
whole server minus the sockets, and every handler returns ``(status,
document)``.  One class exercises the real ``ThreadingHTTPServer`` end
to end over localhost.
"""

import json
import threading
import time
import urllib.error
import urllib.request

from repro import campaigns
from repro.campaigns.checkpoint import CheckpointStore
from repro.service import ServiceApp, make_server, read_partial
from repro.service.http import TENANT_HEADER


def _spec(**overrides):
    kwargs = dict(distance=3, p=2e-2, samples=32, seed=5, batch_size=8)
    kwargs.update(overrides)
    return campaigns.MemorySpec(**kwargs)


def _body(spec) -> bytes:
    return campaigns.spec_to_json(spec).encode("utf-8")


def _wait(app, h, timeout=30.0):
    """Poll the status endpoint until the campaign settles."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        code, doc = app.status(h)
        if code in (200, 500):
            return code, doc
        time.sleep(0.01)
    raise AssertionError(f"campaign {h} did not settle in {timeout}s")


class Gated(campaigns.InlineExecutor):
    """Block each campaign until the test releases it."""

    def __init__(self, release, started=None):
        super().__init__(whole_request=True)
        self.release = release
        self.started = started

    def run_chunks(self, kernel, packing, tasks):
        if self.started is not None:
            self.started.set()
        assert self.release.wait(30)
        yield from super().run_chunks(kernel, packing, tasks)


class TestCacheAndCoalescing:
    def test_submit_compute_then_cache_hit(self, tmp_path):
        app = ServiceApp(tmp_path, executor_factory=campaigns.InlineExecutor)
        try:
            spec = _spec()
            code, doc = app.submit(_body(spec), "public")
            assert code == 202
            assert doc["status"] == "queued"
            assert not doc["cache_hit"] and not doc["coalesced"]
            h = doc["spec_hash"]
            assert doc["links"]["partial"] == f"/campaigns/{h}/partial"

            code, doc = _wait(app, h)
            assert code == 200
            assert doc["status"] == "complete"
            assert doc["result"]["counts"]["samples"] == 32
            assert doc["result"]["provenance"]["cache_hit"] is True

            # The second submission is a cache read, not a campaign.
            code, doc = app.submit(_body(spec), "public")
            assert code == 200
            assert doc["cache_hit"] is True
            assert doc["result"]["provenance"]["cache_hit"] is True
            assert app.scheduler.jobs_run == 1

            # The cached document matches a plain local run bit-for-bit.
            fresh = campaigns.run(spec)
            assert doc["result"]["estimates"] == json.loads(
                fresh.to_json())["estimates"]
        finally:
            app.close()

    def test_concurrent_duplicates_coalesce_to_one_compute(self, tmp_path):
        release, started = threading.Event(), threading.Event()
        app = ServiceApp(tmp_path, threads=2,
                         executor_factory=lambda: Gated(release, started))
        try:
            spec = _spec(seed=7)
            code1, doc1 = app.submit(_body(spec), "public")
            assert code1 == 202
            assert started.wait(30)  # the one compute is in flight
            code2, doc2 = app.submit(_body(spec), "other-tenant")
            assert code2 == 202
            assert doc2["coalesced"] is True
            assert doc2["submissions"] == 2
            release.set()
            code, doc = _wait(app, doc1["spec_hash"])
            assert code == 200
            assert app.scheduler.jobs_run == 1
        finally:
            release.set()
            app.close()

    def test_corrupt_result_record_recomputes(self, tmp_path):
        app = ServiceApp(tmp_path, executor_factory=campaigns.InlineExecutor)
        try:
            spec = _spec(seed=9)
            h = campaigns.spec_hash(spec)
            app.submit(_body(spec), "public")
            _wait(app, h)
            app.store.results.path(h).write_text("{ torn write")
            code, doc = app.submit(_body(spec), "public")
            assert code == 202  # a miss, never a 500
            code, doc = _wait(app, h)
            assert code == 200
            assert app.scheduler.jobs_run == 2
        finally:
            app.close()

    def test_version_mismatch_recomputes(self, tmp_path):
        app1 = ServiceApp(tmp_path, executor_factory=campaigns.InlineExecutor)
        spec = _spec(seed=11)
        h = campaigns.spec_hash(spec)
        try:
            app1.submit(_body(spec), "public")
            _wait(app1, h)
        finally:
            app1.close()
        # An upgraded (here: different-version) server must recompute.
        app2 = ServiceApp(tmp_path, version="0.0.0",
                          executor_factory=campaigns.InlineExecutor)
        try:
            code, doc = app2.submit(_body(spec), "public")
            assert code == 202
            code, doc = _wait(app2, h)
            assert code == 200
            assert doc["version"] == "0.0.0"
        finally:
            app2.close()
        assert len(list(app2.store.results.directory.glob("*.json"))) == 2

    def test_failed_campaign_surfaces_then_retries(self, tmp_path):
        class Exploding(campaigns.Executor):
            def run_chunks(self, kernel, packing, tasks):
                raise RuntimeError("kernel on fire")
                yield  # pragma: no cover

        explode = [True]
        app = ServiceApp(
            tmp_path,
            executor_factory=lambda: (Exploding() if explode[0]
                                      else campaigns.InlineExecutor()))
        try:
            spec = _spec(seed=13)
            h = campaigns.spec_hash(spec)
            app.submit(_body(spec), "public")
            code, doc = _wait(app, h)
            assert code == 500
            assert "kernel on fire" in doc["error"]
            assert app.scheduler.jobs_run == 0

            explode[0] = False  # resubmission clears the failure
            code, doc = app.submit(_body(spec), "public")
            assert code == 202 and not doc["coalesced"]
            code, doc = _wait(app, h)
            assert code == 200
        finally:
            app.close()


class TestValidation:
    def test_malformed_spec_is_400(self, tmp_path):
        app = ServiceApp(tmp_path, executor_factory=campaigns.InlineExecutor)
        try:
            for body in (b"not json", b'{"kind": "memory", "distance": 1}',
                         b'{"kind": "warp-drive"}'):
                code, doc = app.submit(body, "public")
                assert code == 400
                assert "error" in doc
        finally:
            app.close()

    def test_sweep_is_400(self, tmp_path):
        app = ServiceApp(tmp_path, executor_factory=campaigns.InlineExecutor)
        try:
            sweep = campaigns.Sweep(_spec(), axes={"distance": [3, 5]})
            code, doc = app.submit(_body(sweep), "public")
            assert code == 400
            assert "client-side" in doc["error"]
        finally:
            app.close()

    def test_unknown_campaign_is_404(self, tmp_path):
        app = ServiceApp(tmp_path, executor_factory=campaigns.InlineExecutor)
        try:
            assert app.status("feedfacefeedface")[0] == 404
            assert app.partial("feedfacefeedface")[0] == 404
        finally:
            app.close()


class TestPartials:
    def test_partial_streams_monotone_shots(self, tmp_path):
        permits = threading.Semaphore(0)

        class Stepped(campaigns.InlineExecutor):
            def __init__(self):
                super().__init__(whole_request=False)

            def run_chunks(self, kernel, packing, tasks):
                for item in super().run_chunks(kernel, packing, tasks):
                    assert permits.acquire(timeout=30)
                    yield item

        app = ServiceApp(tmp_path, executor_factory=Stepped)
        try:
            spec = _spec(samples=80, seed=19)  # 10 chunks of 8
            h = campaigns.spec_hash(spec)
            app.submit(_body(spec), "public")
            seen = []
            for _ in range(10):
                permits.release()
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    code, doc = app.partial(h)
                    if code == 200 and doc["shots_done"] != \
                            (seen[-1] if seen else None):
                        break
                    time.sleep(0.01)
                seen.append(doc["shots_done"])
                assert doc["shots_requested"] == 80
                assert doc["batch_size"] == 8
                if doc["estimate"] is not None:
                    assert 0.0 <= doc["wilson_low"] <= doc["estimate"] \
                        <= doc["wilson_high"] <= 1.0
            assert seen == sorted(seen)  # appends only: monotone
            assert seen[-1] == 80
            code, doc = _wait(app, h)
            assert code == 200
            code, doc = app.partial(h)
            assert code == 200 and doc["status"] == "complete"
        finally:
            permits.release()
            app.close()

    def test_orphan_shard_reports_interrupted(self, tmp_path):
        app = ServiceApp(tmp_path, executor_factory=campaigns.InlineExecutor)
        try:
            # A shard with no job and no result: a server died mid-run.
            spec = _spec(seed=23)
            campaigns.run(spec, checkpoint=app.store.checkpoints.directory)
            code, doc = app.partial(campaigns.spec_hash(spec))
            assert code == 200
            assert doc["status"] == "interrupted"
            assert doc["shots_done"] == 32
        finally:
            app.close()

    def test_read_partial_tolerates_inflight_tail(self, tmp_path):
        spec = _spec(seed=29)
        campaigns.run(spec, checkpoint=tmp_path)
        path = CheckpointStore(tmp_path).shard(spec).path
        whole = read_partial(path)
        assert whole["chunks_done"] == 4 and whole["shots_done"] == 32
        # A torn append must hide only itself.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "chunk", "index": 99, "truncat')
        assert read_partial(path)["chunks_done"] == 4

    def test_read_partial_rejects_foreign_files(self, tmp_path):
        assert read_partial(tmp_path / "absent.jsonl") is None
        junk = tmp_path / "junk.jsonl"
        junk.write_text("not a shard\n")
        assert read_partial(junk) is None


class TestRefinementThroughService:
    def test_more_shots_resumes_the_cached_campaign(self, tmp_path):
        app = ServiceApp(tmp_path, executor_factory=campaigns.InlineExecutor)
        try:
            small, big = _spec(seed=31), _spec(seed=31, samples=64)
            app.submit(_body(small), "public")
            _wait(app, campaigns.spec_hash(small))

            code, doc = app.submit(_body(big), "public")
            assert code == 202  # different hash: a miss, not a hit
            code, doc = _wait(app, campaigns.spec_hash(big))
            assert code == 200
            prov = doc["result"]["provenance"]
            assert prov["resumed_chunks"] == 4  # all of the small run
            assert app.scheduler.jobs_run == 2
            fresh = json.loads(campaigns.run(big).to_json())
            assert doc["result"]["estimates"] == fresh["estimates"]
        finally:
            app.close()


class TestFairness:
    def test_round_robin_across_tenants(self, tmp_path):
        release, started = threading.Event(), threading.Event()
        order = []

        class Recording(Gated):
            def bind(self, spec, **kwargs):
                order.append(spec.seed)
                super().bind(spec, **kwargs)

        app = ServiceApp(tmp_path, threads=1,
                         executor_factory=lambda: Recording(release, started))
        try:
            # Tenant "a" floods the queue; "b" arrives after.  With the
            # first job blocked, dispatch order alternates tenants.
            specs = {seed: _spec(seed=seed) for seed in (101, 102, 103,
                                                         201, 202)}
            app.submit(_body(specs[101]), "a")
            assert started.wait(30)
            for seed in (102, 103):
                app.submit(_body(specs[seed]), "a")
            for seed in (201, 202):
                app.submit(_body(specs[seed]), "b")
            release.set()
            for seed, spec in specs.items():
                code, _ = _wait(app, campaigns.spec_hash(spec))
                assert code == 200
            assert order == [101, 102, 201, 103, 202]
        finally:
            release.set()
            app.close()


class TestHTTP:
    def _request(self, base, method, path, body=None, headers=None):
        req = urllib.request.Request(base + path, data=body, method=method,
                                     headers=headers or {})
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, json.load(resp)
        except urllib.error.HTTPError as exc:
            with exc:
                return exc.code, json.load(exc)

    def test_end_to_end_over_localhost(self, tmp_path):
        app = ServiceApp(tmp_path, executor_factory=campaigns.InlineExecutor)
        server = make_server(app, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            code, doc = self._request(base, "GET", "/healthz")
            assert code == 200 and doc["status"] == "ok"

            code, doc = self._request(base, "GET", "/no/such/route")
            assert code == 404
            code, doc = self._request(base, "POST", "/campaigns")
            assert code == 400  # no body

            spec = _spec(seed=37)
            code, doc = self._request(
                base, "POST", "/campaigns", _body(spec),
                {TENANT_HEADER: "suite"})
            assert code == 202 and doc["tenant"] == "suite"
            h = doc["spec_hash"]

            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                code, doc = self._request(base, "GET", f"/campaigns/{h}")
                if code == 200:
                    break
                time.sleep(0.02)
            assert code == 200 and doc["result"]["counts"]["samples"] == 32

            code, doc = self._request(base, "POST", "/campaigns", _body(spec))
            assert code == 200 and doc["cache_hit"] is True

            code, doc = self._request(base, "GET",
                                      f"/campaigns/{h}/partial")
            assert code == 200 and doc["shots_done"] == 32
        finally:
            server.shutdown()
            server.server_close()
            app.close()
