"""``python -m repro gc``: planning, deletion, and rename-safety."""

import json

import repro
from repro import campaigns
from repro.campaigns import cli
from repro.campaigns.gc import TMP_AGE_S, apply_gc, plan_gc
from repro.campaigns.store import ResultStore

VERSION = repro.__version__


def _spec(**overrides):
    kwargs = dict(distance=3, p=2e-2, samples=32, seed=5, batch_size=8)
    kwargs.update(overrides)
    return campaigns.MemorySpec(**kwargs)


def _store(root, *, completed_seed=5, inflight_seed=7):
    """A store with one completed campaign (record + shard) and one
    shard whose campaign has no result yet (a run in flight)."""
    results = root / "results"
    checkpoints = root / "checkpoints"
    results.mkdir()
    checkpoints.mkdir()
    done = _spec(seed=completed_seed)
    result = campaigns.run(done, checkpoint=checkpoints)
    ResultStore(results).put(done, result)
    inflight = _spec(seed=inflight_seed)
    campaigns.run(inflight, checkpoint=checkpoints)
    return results, checkpoints, done, inflight


def _reasons(report):
    return {c.path.name: c.reason for c in report.candidates}


class TestPlan:
    def test_clean_store_has_nothing_prunable(self, tmp_path):
        _store(tmp_path)
        report = plan_gc(tmp_path, keep_checkpoints=True)
        assert report.candidates == []
        # one record + two shards survive
        assert report.kept == 3

    def test_every_garbage_class_is_classified(self, tmp_path):
        results, checkpoints, done, _ = _store(tmp_path)
        h = campaigns.spec_hash(done)
        stale = results / f"{'a' * 16}-0.0.1.json"
        stale.write_text("{}")
        corrupt = results / f"{'b' * 16}-{VERSION}.json"
        corrupt.write_text("not json")
        empty = checkpoints / f"{'c' * 16}.jsonl"
        empty.write_text("")
        bad_header = checkpoints / f"{'d' * 16}.jsonl"
        bad_header.write_text('{"type": "chunk"}\n')
        tmp = results / ".x.json.tmp-1-2"
        tmp.write_text("partial")
        (results / "README").write_text("not a record")

        report = plan_gc(tmp_path, now=9e9)
        reasons = _reasons(report)
        assert reasons[stale.name] == "stale_version"
        assert reasons[corrupt.name] == "corrupt_record"
        assert reasons[empty.name] == "empty_shard"
        assert reasons[bad_header.name] == "corrupt_shard"
        assert reasons[tmp.name] == "abandoned_tmp"
        # the completed campaign's shard is redundant with its record...
        assert reasons[f"{h}.jsonl"] == "completed_shard"
        assert len(reasons) == 6
        # ...but the in-flight shard and the valid record are kept,
        # and the foreign file is reported, never deleted.
        assert report.kept == 2
        assert [p.name for p in report.unknown] == ["README"]
        assert report.reclaimable_bytes > 0

    def test_keep_checkpoints_spares_completed_shards(self, tmp_path):
        _store(tmp_path)
        report = plan_gc(tmp_path, keep_checkpoints=True)
        assert "completed_shard" not in set(_reasons(report).values())

    def test_fresh_tmp_is_not_abandoned(self, tmp_path):
        results, _, _, _ = _store(tmp_path)
        (results / ".y.json.tmp-1-2").write_text("partial")
        report = plan_gc(tmp_path, keep_checkpoints=True)
        assert report.candidates == []
        # ...until it crosses the age threshold.
        import time
        report = plan_gc(tmp_path, keep_checkpoints=True,
                         now=time.time() + TMP_AGE_S + 1)
        assert set(_reasons(report).values()) == {"abandoned_tmp"}

    def test_stale_record_stops_protecting_its_shard(self, tmp_path):
        """A record from an old version is not a valid result, so its
        campaign's shard is in flight, not completed."""
        results, checkpoints, done, _ = _store(tmp_path)
        h = campaigns.spec_hash(done)
        record = results / f"{h}-{VERSION}.json"
        record.rename(results / f"{h}-0.0.1.json")
        reasons = _reasons(plan_gc(tmp_path))
        assert reasons == {f"{h}-0.0.1.json": "stale_version"}


class TestApply:
    def test_apply_deletes_exactly_the_candidates(self, tmp_path):
        results, checkpoints, done, inflight = _store(tmp_path)
        (results / f"{'a' * 16}-0.0.1.json").write_text("{}")
        report = apply_gc(plan_gc(tmp_path))
        assert [c.reason for c in report.deleted] == \
            ["stale_version", "completed_shard"]
        assert report.missed == []
        # the record and the in-flight shard survive
        assert ResultStore(results).get(done) is not None
        assert (checkpoints /
                f"{campaigns.spec_hash(inflight)}.jsonl").exists()
        # a second sweep finds nothing
        assert plan_gc(tmp_path).candidates == []

    def test_lost_race_is_missed_not_fatal(self, tmp_path):
        results, _, _, _ = _store(tmp_path)
        (results / f"{'a' * 16}-0.0.1.json").write_text("{}")
        report = plan_gc(tmp_path, keep_checkpoints=True)
        report.candidates[0].path.unlink()  # a concurrent gc won
        report = apply_gc(report)
        assert report.deleted == []
        assert [c.reason for c in report.missed] == ["stale_version"]


class TestCli:
    def test_dry_run_reports_without_deleting(self, tmp_path, capsys):
        results, _, _, _ = _store(tmp_path)
        stale = results / f"{'a' * 16}-0.0.1.json"
        stale.write_text("{}")
        assert cli.main(["gc", str(tmp_path), "--keep-checkpoints"]) == 0
        out = capsys.readouterr().out
        assert "would delete" in out and "stale_version" in out
        assert "dry run" in out
        assert stale.exists()

    def test_apply_json_report(self, tmp_path, capsys):
        results, _, _, _ = _store(tmp_path)
        stale = results / f"{'a' * 16}-0.0.1.json"
        stale.write_text("{}")
        assert cli.main(["gc", str(tmp_path), "--apply", "--json",
                         "--keep-checkpoints"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["deleted"] == [str(stale)]
        assert not stale.exists()

    def test_missing_directory_fails(self, tmp_path, capsys):
        assert cli.main(["gc", str(tmp_path / "absent")]) == 1
        assert "not a directory" in capsys.readouterr().err
