"""``repro.campaigns.run``: the one entry point for every experiment.

``run(spec)`` dispatches through a registry keyed on the spec type, so
new campaign kinds plug in with :func:`register_campaign` without
touching this module.  The Monte-Carlo kinds (memory / end-to-end /
detection) share one chunked engine: the chunk plan comes from
:func:`repro.sim.batch.chunk_plan` (the ``(seed, batch_size)``
reproducibility contract), chunks execute on the chosen
:class:`~repro.campaigns.executors.Executor`, finished chunks stream
into the same estimate/early-stop logic as
:class:`~repro.sim.batch.BatchShotRunner`, and — when a checkpoint
store is given — every finished chunk is durably appended to the
spec's shard before the next one runs, so a killed campaign resumes
bit-identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.campaigns.checkpoint import CheckpointError, resolve_store
from repro.campaigns.executors import Executor, default_executor
from repro.campaigns.results import CampaignResult, Provenance, SweepResult
from repro.campaigns.specs import (DetectionSpec, EndToEndSpec, MemorySpec,
                                   ScalingSpec, ScenarioSpec, StreamingSpec,
                                   Sweep, ThroughputSpec, spec_hash)
from repro.sim.batch import (DetectionShotKernel, EndToEndShotKernel,
                             MemoryShotKernel, chunk_plan,
                             default_chunk_shots, wilson_tight)

#: The campaign registry: spec type -> runner callable.
_RUNNERS: dict[type, Callable] = {}


def register_campaign(spec_type: type):
    """Class decorator registering a runner for a spec type.

    A runner has signature ``fn(spec, executor, store) ->
    CampaignResult``; registering a type twice replaces the runner
    (tests use this to wrap kinds with instrumentation).
    """
    def decorate(fn):
        _RUNNERS[spec_type] = fn
        return fn
    return decorate


def registered_kinds() -> dict[str, type]:
    """Wire-name -> spec type for every registered campaign kind."""
    return {spec_type.kind: spec_type for spec_type in _RUNNERS}


def run(spec, executor: Optional[Executor] = None, checkpoint=None,
        refine: bool = False):
    """Run a campaign spec (or a :class:`Sweep` of them).

    Args:
        spec: any registered campaign spec, or a ``Sweep``.
        executor: where chunks run (default: what ``REPRO_WORKERS``
            asks for via
            :func:`repro.campaigns.executors.default_executor`).
        checkpoint: ``None``, a directory path, or a
            :class:`~repro.campaigns.checkpoint.CheckpointStore`; when
            given, shot-campaign chunks are durably recorded and
            resumed on the next ``run`` of the same spec.
        refine: with a checkpoint store, seed the spec's shard from a
            *sibling* spec's shard (identical in every field but the
            shot request) before running, so asking for more shots
            resumes the existing campaign instead of recomputing it —
            bit-identical to an uninterrupted run of the larger request
            per ``(seed, batch_size)``
            (:func:`repro.campaigns.refine.seed_refinement`).

    Returns:
        :class:`CampaignResult`, or :class:`SweepResult` for a sweep.
    """
    store = resolve_store(checkpoint)
    if executor is None:
        executor = default_executor()
    if isinstance(spec, Sweep):
        return SweepResult([(overrides, run(point, executor, store, refine))
                            for overrides, point in spec.points()])
    fn = _RUNNERS.get(type(spec))
    if fn is None:
        raise TypeError(
            f"no campaign runner registered for {type(spec).__name__}; "
            f"known kinds: {sorted(registered_kinds())}")
    if refine and store is not None:
        from repro.campaigns.refine import seed_refinement
        seed_refinement(store, spec)
    return fn(spec, executor, store)


# ----------------------------------------------------------------------
# The shared chunked engine
# ----------------------------------------------------------------------
def shot_engine(spec) -> tuple[object, int, int]:
    """Build the chunk kernel for a shot-campaign spec.

    Returns ``(kernel, shots, per_shot_elements)`` — the prepared-on-
    demand kernel, the total request, and the per-shot activity
    footprint that caps a whole-request chunk
    (:func:`repro.sim.batch.default_chunk_shots`).  This is the single
    spec-to-kernel translation: the in-process runners below use it, and
    a :mod:`repro.campaigns.distributed` worker rebuilds the *identical*
    kernel from the spec JSON it was shipped, so a chunk's outcome
    cannot depend on which side constructed the kernel.
    """
    if isinstance(spec, MemorySpec):
        kernel = MemoryShotKernel(
            spec.distance, spec.p, region=spec.resolve_region(),
            p_ano=spec.p_ano, decoder=spec.decoder, informed=spec.informed,
            cycles=spec.cycles, decode=spec.decode)
        return (kernel, spec.samples,
                kernel.cycles * spec.distance * spec.distance)
    if isinstance(spec, EndToEndSpec):
        kernel = EndToEndShotKernel(
            spec.distance, spec.p, spec.p_ano, spec.anomaly_size,
            spec.onset, spec.cycles, spec.c_win, spec.n_th, spec.alpha,
            decode=spec.decode)
        return (kernel, spec.shots,
                spec.cycles * (spec.distance - 1) * spec.distance)
    if isinstance(spec, DetectionSpec):
        normal_cycles, post_cycles = spec.resolved_cycles()
        kernel = DetectionShotKernel(
            spec.distance, spec.p, spec.p_ano, spec.anomaly_size,
            spec.c_win, spec.n_th, spec.alpha, normal_cycles, post_cycles,
            scan=spec.scan)
        total = normal_cycles + post_cycles
        return (kernel, spec.trials,
                total * (spec.distance - 1) * spec.distance)
    if isinstance(spec, ScenarioSpec):
        return _scenario_engine(spec)
    raise TypeError(
        f"{type(spec).__name__} is not a chunked shot campaign")


def _scenario_engine(spec: ScenarioSpec) -> tuple[object, int, int]:
    """:func:`shot_engine` for the scenario kind, split by mode.

    The first event donates the scalar knobs the legacy kernel
    constructors still take (``p_ano``, ``anomaly_size``); with the
    scenario attached the kernels resolve every event per shot, so
    those scalars only steer estimation defaults.
    """
    d, scenario = spec.distance, spec.scenario
    if spec.mode == "memory":
        kernel = MemoryShotKernel(
            d, spec.p, scenario=scenario, decoder=spec.decoder,
            informed=spec.informed, cycles=spec.cycles, decode=spec.decode)
        return kernel, spec.shots, kernel.cycles * d * d
    first = scenario.events[0]
    total = spec.total_cycles()
    if spec.mode == "endtoend":
        kernel = EndToEndShotKernel(
            d, spec.p, first.p_ano, first.size, scenario.first_onset,
            spec.total_cycles(), spec.c_win, spec.n_th, spec.alpha,
            decode=spec.decode, decoder=spec.decoder, scenario=scenario)
        return kernel, spec.shots, total * (d - 1) * d
    normal_cycles, post_cycles = spec.resolved_cycles()
    kernel = DetectionShotKernel(
        d, spec.p, first.p_ano, first.size, spec.c_win, spec.n_th,
        spec.alpha, normal_cycles, post_cycles, scan=spec.decode,
        scenario=scenario)
    return kernel, spec.shots, total * (d - 1) * d


def effective_batch_size(spec, kernel, shots: int, per_shot_elements: int,
                         executor: Executor) -> int:
    """The campaign's effective chunk size under ``executor``.

    A pinned ``spec.batch_size`` always wins; otherwise whole-request
    executors get the memory-capped whole request and fan-out executors
    the kernel's small default.
    """
    if spec.batch_size is not None:
        return int(spec.batch_size)
    if executor.whole_request:
        return default_chunk_shots(shots, per_shot_elements)
    return int(kernel.default_batch_size)


@dataclass(frozen=True)
class _ChunkedOutcome:
    outcomes: np.ndarray
    successes: int
    trials: int
    cache_stats: tuple[int, int, int]
    chunks: int
    resumed: int
    requested: int
    batch_size: int
    supervisor: Optional[dict] = None


def _run_chunked(kernel, spec, shots: int, batch_size: int,
                 executor: Executor, store,
                 target_rel_width: Optional[float] = None) -> _ChunkedOutcome:
    """Execute a shot campaign chunk by chunk, resuming from its shard.

    Restored and freshly computed chunks are ingested *in plan order*
    through the same streamed-count/early-stop predicate as
    :meth:`repro.sim.batch.BatchShotRunner.run`, so outcomes — and the
    chunk a ``target_rel_width`` campaign stops after — are bit-equal
    whether zero, some, or all chunks came from the checkpoint.
    """
    shard = store.shard(spec) if store is not None else None
    done = {}
    if shard is not None:
        done = shard.load()
        recorded = shard.recorded_batch_size
        if recorded is not None and recorded != batch_size:
            if spec.batch_size is not None:
                # The spec pins its chunk size; a shard recorded under
                # a different one is not this campaign's (the header
                # carries no CRC, so treat a conflict as corruption).
                raise CheckpointError(
                    f"{shard.path}: shard records batch_size {recorded} "
                    f"but the spec pins {spec.batch_size}")
            # A batch_size=None spec resolves its chunk size per
            # executor; the shard was written under another executor's
            # resolution.  Adopt the recorded size so the plan — and
            # hence the outcomes — match the original run exactly.
            batch_size = recorded
    tasks = chunk_plan(shots, batch_size, spec.seed)
    for index in done:
        if index >= len(tasks):
            raise CheckpointError(
                f"shard holds chunk {index} but the plan has only "
                f"{len(tasks)} chunks — stale or foreign checkpoint")
        if len(done[index][0]) != tasks[index][0]:
            raise CheckpointError(
                f"shard chunk {index} holds {len(done[index][0])} shots "
                f"but the plan expects {tasks[index][0]}")

    pending = [(i, task) for i, task in enumerate(tasks) if i not in done]
    stream = None
    if pending:
        executor.bind(spec, batch_size=batch_size, shots=shots,
                      indices=[i for i, _ in pending])
        stream = executor.run_chunks(kernel, spec.packing,
                                     [task for _, task in pending])

    collected: list[np.ndarray] = []
    successes = trials = 0
    cache_stats = np.zeros(3, dtype=np.int64)
    chunks = resumed = 0
    column = getattr(kernel, "success_column", 0)
    try:
        for index in range(len(tasks)):
            if index in done:
                outcome, stats = done[index]
                resumed += 1
            else:
                outcome, stats = next(stream)
                if shard is not None:
                    shard.append(index, outcome, stats,
                                 batch_size=batch_size)
            collected.append(outcome)
            cache_stats += np.asarray(stats, dtype=np.int64)
            chunks += 1
            col = outcome if outcome.ndim == 1 else outcome[:, column]
            successes += int(np.count_nonzero(col))
            trials += len(outcome)
            if wilson_tight(successes, trials, target_rel_width):
                break
    finally:
        if stream is not None:
            stream.close()

    return _ChunkedOutcome(
        outcomes=np.concatenate(collected),
        successes=successes,
        trials=trials,
        cache_stats=tuple(int(c) for c in cache_stats),
        chunks=chunks,
        resumed=resumed,
        requested=shots,
        batch_size=batch_size,
        supervisor=executor.accounting() if pending else None,
    )


def _provenance(spec, executor: Executor, started: float,
                packing: Optional[str] = None,
                batch_size: Optional[int] = None,
                chunks: int = 0, resumed: int = 0,
                supervisor: Optional[dict] = None) -> Provenance:
    import repro
    from repro.sim import backend
    return Provenance(
        spec_hash=spec_hash(spec),
        kind=spec.kind,
        seed=spec.seed,
        backend=backend.name,
        version=repro.__version__,
        executor=executor.describe(),
        wall_clock_s=time.perf_counter() - started,
        packing=packing,
        batch_size=batch_size,
        chunks=chunks,
        resumed_chunks=resumed,
        supervisor=supervisor,
    )


def _engine_counts(co: _ChunkedOutcome) -> dict:
    hits, misses, evictions = co.cache_stats
    return {"requested": co.requested, "cache_hits": hits,
            "cache_misses": misses, "cache_evictions": evictions}


# ----------------------------------------------------------------------
# Campaign kinds
# ----------------------------------------------------------------------
def _memory_summary(co: _ChunkedOutcome, cycles: int) -> tuple:
    """``(estimates, counts, detail)`` for a memory-engine outcome."""
    from repro.sim.memory import LogicalErrorEstimate
    detail = LogicalErrorEstimate(co.successes, co.trials, cycles)
    estimates = {
        "per_run": detail.per_run,
        "per_cycle": detail.per_cycle,
        "per_cycle_std_error": detail.per_cycle_std_error,
        "std_error": detail.estimate.std_error,
    }
    counts = {"failures": co.successes, "samples": co.trials,
              **_engine_counts(co)}
    return estimates, counts, detail


def _endtoend_summary(co: _ChunkedOutcome) -> tuple:
    """``(estimates, counts, detail)`` for an end-to-end outcome."""
    from repro.sim.endtoend import EndToEndResult
    out = co.outcomes
    latencies = out[out[:, 3] >= 0, 3]
    detail = EndToEndResult(
        shots=len(out),
        naive_failures=int(out[:, 0].sum()),
        detected_failures=int(out[:, 1].sum()),
        oracle_failures=int(out[:, 2].sum()),
        detections=int(len(latencies)),
        mean_latency=(float(latencies.mean()) if len(latencies)
                      else float("nan")),
    )
    estimates = {**{f"{name}_rate": value
                    for name, value in detail.rates().items()},
                 "detection_rate": detail.detection_rate,
                 "mean_latency": detail.mean_latency}
    counts = {"shots": detail.shots,
              "naive_failures": detail.naive_failures,
              "detected_failures": detail.detected_failures,
              "oracle_failures": detail.oracle_failures,
              "detections": detail.detections,
              **_engine_counts(co)}
    return estimates, counts, detail


def _detection_summary(co: _ChunkedOutcome) -> tuple:
    """``(estimates, counts, detail)`` for a detection outcome."""
    from repro.sim.detection import DetectionPerformance
    out = co.outcomes
    latencies = out[out[:, 2] >= 0, 2]
    errors = out[np.isfinite(out[:, 3]), 3]
    detail = DetectionPerformance(
        trials=len(out),
        false_positives=int(out[:, 0].sum()),
        detections=int(out[:, 1].sum()),
        mean_latency=(float(latencies.mean()) if len(latencies)
                      else float("nan")),
        mean_position_error=(float(errors.mean()) if len(errors)
                             else float("nan")),
    )
    estimates = {"false_positive_rate": detail.false_positive_rate,
                 "miss_rate": detail.miss_rate,
                 "mean_latency": detail.mean_latency,
                 "mean_position_error": detail.mean_position_error}
    counts = {"trials": detail.trials,
              "false_positives": detail.false_positives,
              "detections": detail.detections,
              **_engine_counts(co)}
    return estimates, counts, detail


@register_campaign(MemorySpec)
def _run_memory(spec: MemorySpec, executor: Executor,
                store) -> CampaignResult:
    started = time.perf_counter()
    kernel, shots, per_shot = shot_engine(spec)
    batch_size = effective_batch_size(spec, kernel, shots, per_shot,
                                      executor)
    co = _run_chunked(kernel, spec, shots, batch_size, executor,
                      store, target_rel_width=spec.target_rel_width)
    estimates, counts, detail = _memory_summary(co, kernel.cycles)
    return CampaignResult(
        kind=spec.kind,
        estimates=estimates,
        counts=counts,
        provenance=_provenance(spec, executor, started,
                               packing=spec.packing,
                               batch_size=co.batch_size,
                               chunks=co.chunks, resumed=co.resumed,
                               supervisor=co.supervisor),
        detail=detail,
    )


@register_campaign(EndToEndSpec)
def _run_endtoend(spec: EndToEndSpec, executor: Executor,
                  store) -> CampaignResult:
    started = time.perf_counter()
    kernel, shots, per_shot = shot_engine(spec)
    batch_size = effective_batch_size(spec, kernel, shots, per_shot,
                                      executor)
    co = _run_chunked(kernel, spec, shots, batch_size, executor, store)
    estimates, counts, detail = _endtoend_summary(co)
    return CampaignResult(
        kind=spec.kind,
        estimates=estimates,
        counts=counts,
        provenance=_provenance(spec, executor, started,
                               packing=spec.packing,
                               batch_size=co.batch_size,
                               chunks=co.chunks, resumed=co.resumed,
                               supervisor=co.supervisor),
        detail=detail,
    )


@register_campaign(DetectionSpec)
def _run_detection(spec: DetectionSpec, executor: Executor,
                   store) -> CampaignResult:
    started = time.perf_counter()
    kernel, shots, per_shot = shot_engine(spec)
    batch_size = effective_batch_size(spec, kernel, shots, per_shot,
                                      executor)
    co = _run_chunked(kernel, spec, shots, batch_size, executor, store)
    estimates, counts, detail = _detection_summary(co)
    return CampaignResult(
        kind=spec.kind,
        estimates=estimates,
        counts=counts,
        provenance=_provenance(spec, executor, started,
                               packing=spec.packing,
                               batch_size=co.batch_size,
                               chunks=co.chunks, resumed=co.resumed,
                               supervisor=co.supervisor),
        detail=detail,
    )


@register_campaign(ScenarioSpec)
def _run_scenario(spec: ScenarioSpec, executor: Executor,
                  store) -> CampaignResult:
    """One scenario campaign through the mode's chunked engine.

    The chunk plan, resume semantics, and early stopping are exactly
    the legacy kind's — only the summary changes shape with the mode —
    so a single-event scenario campaign is comparable line by line with
    its legacy counterpart.
    """
    started = time.perf_counter()
    kernel, shots, per_shot = shot_engine(spec)
    batch_size = effective_batch_size(spec, kernel, shots, per_shot,
                                      executor)
    rel_width = spec.target_rel_width if spec.mode == "memory" else None
    co = _run_chunked(kernel, spec, shots, batch_size, executor, store,
                      target_rel_width=rel_width)
    if spec.mode == "memory":
        estimates, counts, detail = _memory_summary(co, kernel.cycles)
    elif spec.mode == "endtoend":
        estimates, counts, detail = _endtoend_summary(co)
    else:
        estimates, counts, detail = _detection_summary(co)
    return CampaignResult(
        kind=spec.kind,
        estimates=estimates,
        counts=counts,
        provenance=_provenance(spec, executor, started,
                               packing=spec.packing,
                               batch_size=co.batch_size,
                               chunks=co.chunks, resumed=co.resumed,
                               supervisor=co.supervisor),
        detail=detail,
    )


@register_campaign(StreamingSpec)
def _run_streaming(spec: StreamingSpec, executor: Executor,
                   store) -> CampaignResult:
    """Streamed trials always run inline, whatever the executor.

    The per-round wall clocks *are* the result: shipping trials across
    a worker pool would time the pool's pickling, not the round loop.
    Seeds still follow the chunk-plan contract — one
    :func:`repro.sim.batch.chunk_plan` child per trial — so outcomes
    depend on ``spec.seed`` alone, executor and all.
    """
    from repro.hwmodel.pipeline import StreamSLO
    from repro.streaming import (StreamingPerformance, StreamingTrialDriver,
                                 latency_stats)
    started = time.perf_counter()
    normal_cycles, post_cycles = spec.resolved_cycles()
    driver = StreamingTrialDriver(
        spec.distance, spec.p, spec.p_ano, spec.anomaly_size,
        onset=normal_cycles, cycles=normal_cycles + post_cycles,
        c_win=spec.c_win, n_th=spec.n_th, alpha=spec.alpha)
    results = [driver.run(np.random.default_rng(seed))
               for _, seed in chunk_plan(spec.trials, 1, spec.seed)]
    stats = latency_stats(
        np.concatenate([r.round_latencies_s for r in results]))
    det_lat = [r.latency_cycles for r in results if r.latency_cycles >= 0]
    pos_err = [r.position_error for r in results
               if np.isfinite(r.position_error)]
    detail = StreamingPerformance(
        trials=len(results),
        false_positives=sum(r.false_positive for r in results),
        detections=sum(r.detected for r in results),
        naive_failures=sum(r.naive_failure for r in results),
        detected_failures=sum(r.detected_failure for r in results),
        oracle_failures=sum(r.oracle_failure for r in results),
        mean_latency=(float(np.mean(det_lat)) if det_lat
                      else float("nan")),
        mean_position_error=(float(np.mean(pos_err)) if pos_err
                             else float("nan")),
        latency=stats,
        peak_live_rounds=max(r.peak_live_rounds for r in results),
        results=tuple(results),
    )
    slo = StreamSLO(spec.code_cycle_us)
    return CampaignResult(
        kind=spec.kind,
        estimates={"false_positive_rate": detail.false_positive_rate,
                   "miss_rate": detail.miss_rate,
                   "mean_latency": detail.mean_latency,
                   "mean_position_error": detail.mean_position_error,
                   "p50_round_latency_us": stats.p50_us,
                   "p99_round_latency_us": stats.p99_us,
                   "rounds_per_sec": stats.rounds_per_sec,
                   "slo_headroom": slo.headroom(stats.p99_us)},
        counts={"trials": detail.trials,
                "false_positives": detail.false_positives,
                "detections": detail.detections,
                "naive_failures": detail.naive_failures,
                "detected_failures": detail.detected_failures,
                "oracle_failures": detail.oracle_failures,
                "rounds": stats.rounds,
                "peak_live_rounds": detail.peak_live_rounds},
        provenance=_provenance(spec, executor, started),
        detail=detail,
    )


@register_campaign(ScalingSpec)
def _run_scaling(spec: ScalingSpec, executor: Executor,
                 store) -> CampaignResult:
    from repro.scaling.model import ScalingParameters, density_curve
    started = time.perf_counter()
    params = ScalingParameters(
        anomaly_size=spec.anomaly_size, frequency_hz=spec.frequency_hz,
        lifetime_s=spec.lifetime_s, c_lat=spec.c_lat,
        horizon_cycles=spec.horizon_cycles)
    curve = density_curve(params, list(spec.areas), spec.use_q3de,
                          seed=spec.seed)
    return CampaignResult(
        kind=spec.kind,
        estimates={f"density_area_{area:g}": value
                   for area, value in zip(spec.areas, curve, strict=True)},
        counts={"areas": len(spec.areas),
                "achievable": sum(v is not None for v in curve)},
        provenance=_provenance(spec, executor, started),
        detail=curve,
    )


@register_campaign(ThroughputSpec)
def _run_throughput(spec: ThroughputSpec, executor: Executor,
                    store) -> CampaignResult:
    from repro.arch.throughput import simulate_throughput
    started = time.perf_counter()
    detail = simulate_throughput(
        spec.architecture, spec.num_instructions,
        strike_prob_per_slot=spec.strike_prob_per_slot,
        strike_duration_slots=spec.strike_duration_slots,
        rows=spec.rows, cols=spec.cols,
        rng=np.random.default_rng(spec.seed), max_slots=spec.max_slots)
    return CampaignResult(
        kind=spec.kind,
        estimates={"throughput": detail.throughput},
        counts={"instructions": detail.instructions,
                "slots": detail.slots, "strikes": detail.strikes},
        provenance=_provenance(spec, executor, started),
        detail=detail,
    )
