"""Cross-shot batched greedy decoding: buckets, arenas, flattened sorts.

PR 2 made sampling and syndrome extraction word-wise; the per-shot
decode loop — rebuild an ``(n, n)`` distance matrix, sort candidates,
run a Python acceptance scan, for every shot — became the Monte-Carlo
bottleneck.  This module decodes a whole chunk of shots at once and is
certified *bit-identical* to :func:`repro.decoding.greedy
.greedy_cut_parity` / :func:`greedy_decode_fast` on every input it
accepts (anything else falls back to those functions, shot by shot):

* **Bucketed distance builds** — shots are grouped by active-node count
  ``n`` and stacked into ``(S, n, 3)`` tensors; pairwise and boundary
  distances for the whole bucket come out of a handful of broadcast
  ufunc passes (the ``int16`` fast path of
  :meth:`DistanceModel.pairwise_int` generalized to the batch axis,
  dropping to ``int8`` when the coordinate spans allow).

* **Chunk-global candidate generation** — every bucket appends its
  surviving pair/boundary candidates (node ids offset per shot) to flat
  arrays; one stable distance sort orders the whole chunk.  Candidates
  of different shots never interact, so only the *within-shot* order
  matters, which the flattened sort preserves exactly.

* **Vectorized acceptance** — the sequential distance-ordered scan is
  replaced by its round-based fixpoint: per distance level, accept every
  candidate that is the earliest remaining candidate of *all* its
  endpoints, drop candidates touching matched nodes, repeat.  Each
  round's "earliest incident candidate" map is one reversed scatter;
  the result is provably the sequential greedy matching (the earliest
  remaining candidate always wins in both formulations), with zero
  per-shot NumPy calls and no Python acceptance loop.

* **Scratch arenas** — every bucket-shaped temporary (stacked nodes,
  distance/threshold/keep tensors, the endpoint maps) comes from a
  grow-only :class:`ScratchArena` keyed on buffer role, so steady-state
  chunks allocate nothing.

* **Zero-clique prematching** — with a ``w_ano = 0`` region, the
  zero-distance cliques of the per-shot core are exactly the nodes
  *inside* the box (``to_box == 0``): the O(n^2) zero-matrix pass of the
  per-shot path collapses to an O(n) mask and a parity trick.

The engine consumes *host* coordinate arrays: on the CuPy backend the
packed word kernels reduce device syndromes to the (small) active-node
index arrays at :meth:`SyndromeLattice.packed_active_nodes`, and the
bucketed builds plus the acceptance — which is host-bound by nature —
run on NumPy from there.  Moving the bucket tensors themselves onto the
device seam is future work (see ROADMAP).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.decoding.decoder_base import DecodeResult, Match
from repro.decoding.greedy import (_greedy_fast_core, _upper_mask,
                                   greedy_decode_fast)
from repro.decoding.weights import (NORTH, SOUTH, DistanceModel,
                                    MultiRegionDistanceModel,
                                    region_signature)

#: Per-bucket element budget of the float fallback tier's ``(S, n, n)``
#: tensors (``pairwise_batch`` materializes a 3-component diff on top).
_FLOAT_BUCKET_BUDGET = 1 << 18

#: Coordinate bound of the integer fast path (shared with
#: :meth:`DistanceModel.pairwise_int`).
INT_LIMIT = 2000

#: Per-bucket element budget for the ``(S, n, n)`` tensors: buckets are
#: split so the distance/keep scratch stays cache-resident.
BUCKET_ELEMENT_BUDGET = 1 << 21

#: Below this many surviving candidates a distance level finishes on a
#: sequential set-scan instead of more vectorized rounds: tie chains
#: shrink slowly under rounds, and at this size the plain scan wins.
_SCAN_TAIL = 3 << 12


class ScratchArena:
    """Grow-only scratch buffers, reused across chunks.

    Buffers are keyed by ``(role, dtype)`` and handed out as 1-D views
    of the requested size; a request larger than the current buffer
    reallocates (doubling), anything smaller is a free slice.  One arena
    per worker removes every steady-state allocation of the bucketed
    decode loop.
    """

    def __init__(self):
        self._bufs: dict = {}

    def take(self, role: str, size: int, dtype) -> np.ndarray:
        """A 1-D scratch view of ``size`` elements (contents arbitrary)."""
        key = (role, np.dtype(dtype))
        buf = self._bufs.get(key)
        if buf is None or buf.size < size:
            cap = max(size, 0 if buf is None else 2 * buf.size, 1)
            buf = np.empty(cap, dtype=dtype)
            self._bufs[key] = buf
        return buf[:size]

    @property
    def nbytes(self) -> int:
        """Total bytes currently held (observability/tests)."""
        return sum(b.nbytes for b in self._bufs.values())

    def __len__(self) -> int:
        return len(self._bufs)


# ----------------------------------------------------------------------
# Eligibility
# ----------------------------------------------------------------------
def _coords_eligible(distance: int, allc: np.ndarray) -> bool:
    """Whether a chunk's concatenated coordinates fit the integer engine.

    Integer nodes, nonnegative coordinates bounded by ``INT_LIMIT``,
    rows on the lattice (``i <= d - 2``, which keeps every boundary
    distance >= 1 — the invariant the zero-clique and level logic lean
    on), and a moderate code distance.
    """
    if distance > INT_LIMIT:
        return False
    if not np.issubdtype(allc.dtype, np.integer):
        return False
    if not len(allc):
        return True
    if int(allc.min()) < 0 or int(allc.max()) > INT_LIMIT:
        return False
    if int(allc[:, 1].max()) > distance - 2:
        return False
    return True


def _region_ok(distance: int, region) -> bool:
    """Whether one region's geometry fits the integer engine."""
    return region.row_lo <= distance and region.t_lo <= INT_LIMIT


def _chunk_eligible(model: DistanceModel, allc: np.ndarray) -> bool:
    """Whether the integer bucketed engine covers this model + node set.

    Mirrors (and slightly extends) the :meth:`pairwise_int` envelope:
    :func:`_coords_eligible` coordinates plus a region (only with zero
    weight) whose row origin sits on the lattice.  Anything outside
    decodes through the per-shot reference core (or, for weighted
    regions, the float bucketed tier) instead.

    Multi-region models (``model.regions``, e.g.
    :class:`~repro.decoding.weights.MultiRegionDistanceModel`) always
    decline: their ``region`` is ``None`` by design, and routing them
    into the uniform integer engine would silently drop every box.
    They take the certified per-shot float core (the envelope extension
    is follow-on work).
    """
    if getattr(model, "regions", None):
        return False
    reg = model.region
    if reg is not None:
        if model.w_ano != 0.0:
            return False
        if not _region_ok(model.distance, reg):
            return False
    return _coords_eligible(model.distance, allc)


# ----------------------------------------------------------------------
# The bucketed engine
# ----------------------------------------------------------------------
def _region_bounds(reg, d: int, cmax: int) -> tuple:
    """One region's integer clip bounds, folded into the data range.

    ``min(max(t, lo), hi)`` never exceeds ``max(cmax, lo)``, so capping
    ``hi`` there is inert, and a lower bound above the capped upper
    bound clips to it — both reductions are value-exact and keep the
    bounds (and every to-box distance) inside the engine dtype even for
    explicit far-future ``t_hi`` boxes.  Returns ``(lo1, hi1, rlo, hi2,
    clo, tlo, thi, open_window)``; with an open window the box top is
    each *shot's* own t_max (matters when t_lo exceeds it — the box
    collapses onto the shot's last layer), applied per bucket.
    """
    lo1 = reg.row_lo
    hi1 = min(reg.row_hi - 1, d - 2)
    hi2 = min(reg.col_hi - 1, d - 1)
    if reg.t_hi is not None:
        thi = min(reg.t_hi - 1, max(cmax, reg.t_lo))
        tlo = min(reg.t_lo, thi)
        open_window = False
    else:
        thi = 0  # unused: the shot's own t_max is the box top
        tlo = min(reg.t_lo, cmax + 1)
        open_window = True
    return (lo1, hi1, min(lo1, hi1), hi2, min(reg.col_lo, hi2), tlo, thi,
            open_window)


def _decode_engine(model: DistanceModel, nodes_list: list, arena: ScratchArena,
                   collect: bool, allc: np.ndarray, regions=None):
    """Bucketed decode of pre-screened (eligible, nonempty) shots.

    ``regions`` optionally carries one region (or ``None``) per shot —
    the region-aware path of the end-to-end kernels, where every shot's
    strike landed somewhere else.  When omitted, every shot shares
    ``model.region`` exactly as before.  Shots are bucketed by
    (has-region, active-node count) and all region geometry — box
    clips, via folds, boundary detours, zero cliques — is evaluated
    from per-shot bound vectors broadcast over the bucket tensors, so
    mixed-region chunks batch as well as shared-region ones.

    Returns ``(parities, accepted)`` where ``parities`` is the ``(S,)``
    int8 north-cut parities and ``accepted`` (collect mode only) the
    per-shot ``[(a, b, w), ...]`` acceptance lists in the exact order of
    the per-shot reference core.
    """
    S_all = len(nodes_list)
    parities = np.zeros(S_all, dtype=np.int8)
    ns = np.fromiter((len(x) for x in nodes_list), dtype=np.int64,
                     count=S_all)
    nmax = int(ns.max(initial=0))
    pre_pairs: list = [[] for _ in range(S_all)] if collect else None
    if nmax == 0:
        return parities, pre_pairs

    d = model.distance
    cmax = int(allc.max(initial=0))  # allc: callers' eligibility concat

    # Per-shot region bounds (int64 staging; cast to the engine dtype
    # per bucket).  The shared-region path broadcasts one bounds tuple;
    # the Python attribute walk only runs when regions truly differ.
    has = np.zeros(S_all, dtype=bool)
    bounds = np.zeros((7, S_all), dtype=np.int64)
    lo1, hi1, rlo, hi2, clo, tlo, thi = bounds
    open_w = np.zeros(S_all, dtype=bool)
    if regions is None:
        if model.region is not None:
            has[:] = True
            *vals, opn = _region_bounds(model.region, d, cmax)
            bounds[:] = np.array(vals)[:, None]
            open_w[:] = opn
    else:
        for s, reg in enumerate(regions):
            if reg is None:
                continue
            has[s] = True
            *vals, opn = _region_bounds(reg, d, cmax)
            bounds[:, s] = vals
            open_w[s] = opn

    # Per-shot t_max over the *full* node set (open-window box tops must
    # not move when zero-clique compaction drops in-box nodes below).
    tmax_shot = None
    offs = None
    if has.any():
        offs = np.empty(S_all + 1, dtype=np.int64)
        offs[0] = 0
        np.cumsum(ns, out=offs[1:])
        if open_w.any():
            tmax_shot = np.maximum.reduceat(
                allc[:, 0].astype(np.int64), offs[:-1])
            tmax_shot[ns == 0] = 0  # reduceat reads across empty shots

    if not collect and has.any():
        # Zero-clique compaction: with w_ano = 0 the in-box nodes pair
        # off at distance zero — weight 0, node-node, no boundary — so
        # the north-cut parity never sees them.  Parity mode drops the
        # paired nodes *before* the dense builds (each bucket tensor
        # shrinks quadratically in the survivors) instead of
        # prematching them inside it; collect mode keeps the in-tensor
        # prematch, which preserves the reference acceptance lists.
        shot_of = np.repeat(np.arange(S_all), ns)
        t_f = allc[:, 0].astype(np.int64)
        i_f = allc[:, 1].astype(np.int64)
        j_f = allc[:, 2].astype(np.int64)
        thi_f = (np.where(open_w, tmax_shot, thi)
                 if tmax_shot is not None else thi)[shot_of]
        to_box = (np.abs(t_f - np.minimum(np.maximum(t_f, tlo[shot_of]),
                                          thi_f))
                  + np.abs(i_f - np.minimum(np.maximum(i_f, rlo[shot_of]),
                                            hi1[shot_of]))
                  + np.abs(j_f - np.minimum(np.maximum(j_f, clo[shot_of]),
                                            hi2[shot_of])))
        inbox = (to_box == 0) & has[shot_of]
        if inbox.any():
            cnt_in = np.add.reduceat(inbox.astype(np.int64), offs[:-1])
            cnt_in[ns == 0] = 0
            keep = ~inbox
            odd = np.flatnonzero(cnt_in & 1)
            if len(odd):
                # An odd shot's last in-box node stays free, exactly as
                # the in-tensor prematch leaves it.
                idx = np.where(inbox, np.arange(len(inbox)), -1)
                last = np.maximum.reduceat(idx, offs[:-1])
                keep[last[odd]] = True
            new_ns = ns - cnt_in + (cnt_in & 1)
            changed = np.flatnonzero(new_ns != ns)
            if len(changed):
                nodes_list = list(nodes_list)
                for s in changed.tolist():
                    nodes_list[s] = np.asarray(
                        nodes_list[s])[keep[offs[s]:offs[s + 1]]]
                ns = new_ns
                nmax = int(ns.max(initial=0))
                if nmax == 0:
                    return parities, pre_pairs

    mag = max(cmax, d)
    if has.any():
        mag = max(mag, int(lo1.max()), int(tlo.max()), int(thi.max()))

    # Every value the engine materializes — direct distances, via sums,
    # boundary vias — is bounded by 6 * mag + a small constant; pick
    # the narrowest integer dtype that holds them.
    dd = np.int8 if 6 * mag + 8 <= 126 else np.int16

    # has-region shots sort after region-free ones, so every bucket is
    # homogeneous in "carries a box" and the region math never touches
    # a direct-distance shot.
    order = np.lexsort((ns, has))
    matched = arena.take("matched", S_all * nmax, bool)
    matched[:] = False

    # Candidates accumulate pre-split by distance level (boundary
    # distances are bounded by ~d/2, so levels are few and the bucket
    # -local splits run on cache-hot arrays); models with a wide
    # distance range collect flat and sort once in :func:`_accept`.
    split_levels = d <= 64
    by_level: dict = {}
    p_ga, p_gb, p_d = [], [], []
    b_ga, b_d, b_north = [], [], []

    def _level(lv):
        got = by_level.get(lv)
        if got is None:
            got = ([], [], [], [])  # pair ga, pair gb, bnd ga, bnd north
            by_level[lv] = got
        return got

    k = 0
    while k < S_all:
        n = int(ns[order[k]])
        boxed = bool(has[order[k]])
        k2 = k
        while (k2 < S_all and ns[order[k2]] == n
               and has[order[k2]] == boxed):
            k2 += 1
        if n == 0:
            k = k2
            continue
        smax = max(1, BUCKET_ELEMENT_BUDGET // (n * n))
        for blo in range(k, k2, smax):
            ids = order[blo:min(k2, blo + smax)]
            S = len(ids)
            nn = n * n
            sz = S * nn
            stacked = arena.take("stacked", S * n * 3, dd).reshape(S, n, 3)
            for q, s in enumerate(ids):
                stacked[q] = nodes_list[s]
            # Contiguous (3, S, n) coordinate planes: broadcasting from
            # the stride-3 column views runs ~3x slower than from
            # contiguous rows, and every dense pass reads these.
            planes = arena.take("planes", 3 * S * n, dd).reshape(3, S, n)
            np.copyto(planes, stacked.transpose(2, 0, 1))
            t = planes[0]
            i = planes[1]
            j = planes[2]

            dist = arena.take("dist", sz, dd).reshape(S, n, n)
            tmp = arena.take("tmp", sz, dd).reshape(S, n, n)
            np.subtract(t[:, :, None], t[:, None, :], out=dist)
            np.abs(dist, out=dist)
            np.subtract(i[:, :, None], i[:, None, :], out=tmp)
            np.abs(tmp, out=tmp)
            dist += tmp
            np.subtract(j[:, :, None], j[:, None, :], out=tmp)
            np.abs(tmp, out=tmp)
            dist += tmp

            base = ids.astype(np.int32) * np.int32(nmax)
            pre = None
            north = i + dd(1)
            south = dd(d - 1) - i
            if boxed:
                # Per-shot bound columns, broadcast over the bucket.
                # ``min(max(x, lo), hi)`` is exactly np.clip's order, so
                # a lower bound above its capped upper bound clips to
                # the cap — shot for shot, as in the scalar-region path.
                tlo_b = tlo[ids].astype(dd)[:, None]
                rlo_b = rlo[ids].astype(dd)[:, None]
                rhi_b = hi1[ids].astype(dd)[:, None]
                clo_b = clo[ids].astype(dd)[:, None]
                chi_b = hi2[ids].astype(dd)[:, None]
                lo1_b = lo1[ids].astype(dd)[:, None]
                opn = open_w[ids]
                if opn.all():
                    thi_b = tmax_shot[ids].astype(dd)[:, None]
                elif opn.any():
                    thi_b = np.where(opn[:, None],
                                     tmax_shot[ids].astype(dd)[:, None],
                                     thi[ids].astype(dd)[:, None])
                else:
                    thi_b = thi[ids].astype(dd)[:, None]
                ct = np.minimum(np.maximum(t, tlo_b), thi_b)
                to_box = (np.abs(t - ct)
                          + np.abs(i - np.minimum(np.maximum(i, rlo_b),
                                                  rhi_b))
                          + np.abs(j - np.minimum(np.maximum(j, clo_b),
                                                  chi_b)))
                np.add(to_box[:, :, None], to_box[:, None, :], out=tmp)
                np.minimum(dist, tmp, out=dist)
                np.minimum(north, to_box + (lo1_b + dd(1)), out=north)
                np.minimum(south, to_box + (dd(d - 1) - rhi_b), out=south)
                # Zero-clique prematch: with w_ano = 0 the distance-zero
                # cliques are exactly the in-box nodes; pair them off in
                # index order (the per-shot core's clique pairing) and
                # leave an odd shot's last in-box node free.
                inbox = to_box == 0
                cnt = inbox.sum(axis=1)
                if cnt.max(initial=0) > 1:
                    pre = inbox
                    odd = np.flatnonzero(cnt % 2 == 1)
                    if len(odd):
                        last = n - 1 - np.argmax(inbox[odd, ::-1], axis=1)
                        pre[odd, last] = False
                    matched[(base[:, None]
                             + np.arange(n, dtype=np.int32))[pre]] = True
                    if collect:
                        for q in np.flatnonzero(pre.any(axis=1)):
                            members = np.flatnonzero(pre[q]).tolist()
                            pre_pairs[ids[q]] = [
                                (members[c], members[c + 1], 0.0)
                                for c in range(0, len(members), 2)]
            bdist = np.minimum(north, south)
            northf = north <= south
            if pre is not None:
                # Prematched nodes take threshold -1: every incident
                # pair fails ``dist <= min(thr)`` — the free-mask of the
                # per-shot core without two O(S n^2) AND passes.
                thr = np.where(pre, dd(-1), bdist)
            else:
                thr = bdist

            sz8 = -8 * (-sz // 8)
            keep_flat = arena.take("keep", sz8, bool)
            keep_flat[sz:] = False
            keep = keep_flat[:sz].reshape(S, n, n)
            np.minimum(thr[:, :, None], thr[:, None, :], out=tmp)
            np.less_equal(dist, tmp, out=keep)
            keep &= _upper_mask(n)
            # Two-stage sparse scan: find nonzero 8-byte words first,
            # then bits inside them — the index-extraction pass visits
            # a few-percent-dense mask at word granularity.
            words = np.flatnonzero(keep_flat.view(np.int64))
            if len(words):
                block = keep_flat.reshape(-1, 8)[words]
                sub = np.flatnonzero(block.ravel())
                flat = (words[sub >> 3].astype(np.int32) * np.int32(8)
                        + (sub & 7).astype(np.int32))
            else:
                flat = np.zeros(0, dtype=np.int32)
            q = flat // np.int32(nn)
            rem = flat - q * np.int32(nn)
            pi = rem // np.int32(n)
            pj = rem - pi * np.int32(n)
            gbase = base[q]
            pga = gbase + pi
            pgb = gbase + pj
            pdv = dist.ravel()[flat]
            if pre is not None:
                bs, ba = np.nonzero(~pre)
                bga = base[bs] + ba.astype(np.int32)
                bdv = bdist[bs, ba]
                bnf = northf[bs, ba]
            else:
                bga = (base[:, None]
                       + np.arange(n, dtype=np.int32)).ravel()
                bdv = bdist.ravel()
                bnf = northf.ravel()
            if split_levels:
                lmax_b = int(bdv.max(initial=0))
                for lv in range(lmax_b + 1):
                    slot = None
                    sel = np.flatnonzero(pdv == lv)
                    if len(sel):
                        slot = _level(lv)
                        slot[0].append(pga[sel])
                        slot[1].append(pgb[sel])
                    bsel = np.flatnonzero(bdv == lv)
                    if len(bsel):
                        slot = _level(lv) if slot is None else slot
                        slot[2].append(bga[bsel])
                        slot[3].append(bnf[bsel])
            else:
                p_ga.append(pga)
                p_gb.append(pgb)
                p_d.append(pdv)
                b_ga.append(bga)
                b_d.append(bdv)
                b_north.append(bnf)
        k = k2

    cat = np.concatenate
    z32 = np.zeros(0, np.int32)
    zb = np.zeros(0, bool)
    if split_levels:
        levels = []
        for lv in sorted(by_level):
            pl_a, pl_b, bl_a, bl_n = by_level[lv]
            levels.append((lv,
                           cat(pl_a) if pl_a else z32,
                           cat(pl_b) if pl_b else z32,
                           cat(bl_a) if bl_a else z32,
                           cat(bl_n) if bl_n else zb))
    else:  # wide distance range: one stable sort, then level slices
        p_ga = cat(p_ga) if p_ga else z32
        p_gb = cat(p_gb) if p_gb else z32
        p_d = cat(p_d) if p_d else np.zeros(0, dd)
        b_ga = cat(b_ga) if b_ga else z32
        b_d = cat(b_d) if b_d else np.zeros(0, dd)
        b_north = cat(b_north) if b_north else zb
        p_order = np.argsort(p_d, kind="stable")
        b_order = np.argsort(b_d, kind="stable")
        pd_sorted = p_d[p_order]
        bd_sorted = b_d[b_order]
        levels = []
        for lv in np.union1d(pd_sorted, bd_sorted).tolist():
            plo, phi = np.searchsorted(pd_sorted, [lv, lv + 1])
            blo, bhi = np.searchsorted(bd_sorted, [lv, lv + 1])
            psel = p_order[plo:phi]
            bsel = b_order[blo:bhi]
            levels.append((int(lv), p_ga[psel], p_gb[psel],
                           b_ga[bsel], b_north[bsel]))

    accepted = _accept(levels, matched, S_all, nmax, parities, arena,
                       collect)
    if not collect:
        return parities, None

    # Assemble per-shot acceptance lists: prematched zero pairs first,
    # then accepted candidates by (level, within-level position) — the
    # per-shot core's exact ordering.
    acc_ga, acc_b, acc_lvl, acc_idx = accepted
    shot = acc_ga // np.int32(nmax)
    local = acc_ga - shot * np.int32(nmax)
    order = np.lexsort((acc_idx, acc_lvl, shot))
    shot_l = shot[order].tolist()
    a_l = local[order].tolist()
    b_l = acc_b[order].tolist()
    w_l = acc_lvl[order].tolist()
    out_lists = pre_pairs
    for s, a, b, w in zip(shot_l, a_l, b_l, w_l, strict=True):
        out_lists[s].append((a, b, float(w)))
    return parities, out_lists


def _accept(levels, matched, S_all, nmax, parities, arena, collect):
    """Level-wise round-based acceptance over flattened candidates.

    ``levels`` holds ``(lv, pair_ga, pair_gb, bnd_ga, bnd_north)``
    tuples ascending in distance; within a level pairs precede
    boundaries and both keep generation (row-major) order — exactly the
    stable distance sort of the per-shot core.
    Writes north-cut parities into ``parities``; in collect mode also
    returns the accepted candidates as flat arrays
    ``(gid_a, b_code, level, idx)`` with ``b_code`` the partner node's
    local index or the boundary side constant.
    """
    first = arena.take("first", S_all * nmax, np.int32)
    first[:] = -1
    stamp = 0  # monotone position base: stale scatters never re-match
    north_gids: list = []
    acc_out = ([], [], [], []) if collect else None

    for lv, ga_p, gb_p, ga_b, nof_b in levels:
        npair, nbnd = len(ga_p), len(ga_b)
        if not npair + nbnd:
            continue
        # Entry filter before the concat: candidates whose endpoints
        # matched at an earlier level are dead on arrival (the bulk, at
        # high levels) and never enter the round arrays.
        alive_p = ~matched[ga_p]
        alive_p &= ~matched[gb_p]
        alive_b = ~matched[ga_b]
        if collect:
            idx0 = np.concatenate([
                np.arange(npair, dtype=np.int64)[alive_p],
                (npair + np.arange(nbnd, dtype=np.int64))[alive_b]])
            bcode = np.concatenate([
                (gb_p[alive_p] % np.int32(nmax)).astype(np.int64),
                np.where(nof_b[alive_b], NORTH, SOUTH).astype(np.int64)])
        ga_p, gb_p = ga_p[alive_p], gb_p[alive_p]
        ga_b = ga_b[alive_b]
        ga = np.concatenate([ga_p, ga_b])
        # Boundary candidates are self-loops: the acceptance test
        # ``first[ga] == pos == first[gb]`` then degenerates to "no
        # earlier remaining candidate touches this node".
        gb = np.concatenate([gb_p, ga_b])
        nof = np.concatenate([np.zeros(len(ga_p), dtype=bool),
                              nof_b[alive_b]])
        while len(ga) > _SCAN_TAIL:
            m = len(ga)
            if stamp > 2**31 - 2 - 2 * m:  # stamp wrap: hard reset
                first[:] = -1
                stamp = 0
            pos = np.arange(stamp, stamp + m, dtype=np.int32)
            stamp += m
            e_all = np.empty(2 * m, dtype=np.int32)
            e_all[0::2] = ga
            e_all[1::2] = gb
            pp = np.empty(2 * m, dtype=np.int32)
            pp[0::2] = pos
            pp[1::2] = pos
            # Reversed scatter: the earliest position wins; stamps from
            # earlier rounds are strictly smaller than this round's
            # range, so no reset pass is needed.
            first[e_all[::-1]] = pp[::-1]
            acc = (first[ga] == pos) & (first[gb] == pos)
            matched[ga[acc]] = True
            matched[gb[acc]] = True
            accn = acc & nof
            if accn.any():
                north_gids.append(ga[accn])
            if collect and acc.any():
                acc_out[0].append(ga[acc])
                acc_out[1].append(bcode[acc])
                acc_out[2].append(np.full(int(acc.sum()), lv,
                                          dtype=np.int64))
                acc_out[3].append(idx0[acc])
            alive = ~matched[ga]
            alive &= ~matched[gb]
            ga, gb, nof = ga[alive], gb[alive], nof[alive]
            if collect:
                bcode, idx0 = bcode[alive], idx0[alive]
        if len(ga):
            # Sequential finish for the tie-chain tail: every surviving
            # endpoint is unmatched and shots never share nodes, so one
            # in-array-order scan equals the per-shot greedy acceptance
            # exactly (only within-shot relative order matters).
            taken: set = set()
            add = taken.add
            acc_list = []
            for k, (a, b) in enumerate(zip(ga.tolist(), gb.tolist(), strict=True)):
                if a in taken or b in taken:
                    continue
                add(a)
                add(b)
                acc_list.append(k)
            if acc_list:
                acc_idx = np.array(acc_list, dtype=np.int64)
                matched[ga[acc_idx]] = True
                matched[gb[acc_idx]] = True
                accn = acc_idx[nof[acc_idx]]
                if len(accn):
                    north_gids.append(ga[accn])
                if collect:
                    acc_out[0].append(ga[acc_idx])
                    acc_out[1].append(bcode[acc_idx])
                    acc_out[2].append(np.full(len(acc_idx), lv,
                                              dtype=np.int64))
                    acc_out[3].append(idx0[acc_idx])

    if north_gids:
        gn = np.concatenate(north_gids)
        cnt = np.bincount((gn // np.int32(nmax)).astype(np.int64),
                          minlength=S_all)
        parities[:] = (cnt & 1).astype(np.int8)
    if not collect:
        return None
    z64 = np.zeros(0, np.int64)
    return (np.concatenate(acc_out[0]) if acc_out[0] else
            np.zeros(0, np.int32),
            np.concatenate(acc_out[1]) if acc_out[1] else z64,
            np.concatenate(acc_out[2]) if acc_out[2] else z64,
            np.concatenate(acc_out[3]) if acc_out[3] else z64)


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def batched_cut_parities(model: DistanceModel, nodes_list: list,
                         cache=None,
                         arena: Optional[ScratchArena] = None) -> np.ndarray:
    """North-cut parities of the greedy matching for a chunk of shots.

    Equals ``[greedy_cut_parity(model, nodes) for nodes in nodes_list]``
    bit for bit; shots outside the integer engine's envelope (float
    weights, negative/huge coordinates) run through the per-shot
    reference core.  ``cache`` is an optional
    :class:`repro.sim.batch.MatchingCache`: lookups and stores use the
    same keys and hit accounting as the per-shot path (below the LRU
    capacity; at saturation the bulk stores can evict in a different
    order, which shifts later stats but never outcomes — the cache is
    pure memoization), and duplicate node sets inside the chunk decode
    once.
    """
    S = len(nodes_list)
    out = np.zeros(S, dtype=np.int8)
    if S == 0:
        return out
    if arena is None:
        arena = ScratchArena()

    sub_nodes: list = []
    sub_slots: list = []
    sub_keys: list = []
    if cache is None:
        for s, nodes in enumerate(nodes_list):
            if len(nodes):
                sub_nodes.append(nodes)
                sub_slots.append([s])
                sub_keys.append(None)
    else:
        by_key: dict = {}
        for s, nodes in enumerate(nodes_list):
            if not len(nodes):
                continue
            if len(nodes) > cache.max_nodes:
                sub_nodes.append(nodes)
                sub_slots.append([s])
                sub_keys.append(None)
                continue
            key = nodes.tobytes()
            pos = by_key.get(key)
            if pos is not None:
                # A repeat inside the chunk: the sequential path would
                # have stored the first occurrence already, so this is a
                # hit there too.
                cache.hits += 1
                sub_slots[pos].append(s)
                continue
            val = cache.get(key)
            if val is not None:
                out[s] = val
                continue
            by_key[key] = len(sub_nodes)
            sub_nodes.append(nodes)
            sub_slots.append([s])
            sub_keys.append(key)

    if not sub_nodes:
        return out

    allc = np.concatenate(sub_nodes)
    if (_chunk_eligible(model, allc)
            and len(sub_nodes) * max(map(len, sub_nodes)) < 2**31):
        parities, _ = _decode_engine(model, sub_nodes, arena, False, allc)
    elif model.region is not None and model.w_ano != 0.0:
        # Weighted region: the per-shot core always takes the float
        # pairwise/boundary path here, so batching those builds through
        # the (bit-equal) batch primitives changes nothing but speed.
        parities = _float_bucket_parities(model, sub_nodes)
    else:
        parities = np.fromiter(
            ((_greedy_fast_core(model, nodes, False)[1] & 1)
             for nodes in sub_nodes), dtype=np.int8, count=len(sub_nodes))

    for p, slots, key in zip(parities.tolist(), sub_slots, sub_keys, strict=True):
        for s in slots:
            out[s] = p
        if key is not None:
            cache.put(key, p)
    return out


def _float_bucket_parities(model: DistanceModel,
                           nodes_list: list) -> np.ndarray:
    """Per-shot acceptance over bucket-wide float distance tensors.

    For a weighted region (``w_ano != 0``) the integer engine declines
    and the per-shot core computes float :meth:`DistanceModel.pairwise`
    / :meth:`boundary` matrices shot by shot.  Here same-size shots are
    stacked and the whole bucket's distances come out of
    :meth:`DistanceModel.pairwise_batch` / :meth:`boundary_batch` —
    bit-equal, row for row, to the per-shot methods — while the
    acceptance scan stays the certified per-shot loop, fed the
    precomputed slices.  Outcomes are therefore bit-identical to
    ``[greedy_cut_parity(model, nodes) for nodes in nodes_list]``.
    """
    S_all = len(nodes_list)
    parities = np.zeros(S_all, dtype=np.int8)
    ns = np.fromiter((len(x) for x in nodes_list), dtype=np.int64,
                     count=S_all)
    order = np.argsort(ns, kind="stable")
    k = 0
    while k < S_all:
        n = int(ns[order[k]])
        k2 = k
        while k2 < S_all and ns[order[k2]] == n:
            k2 += 1
        if n == 0:
            k = k2
            continue
        smax = max(1, _FLOAT_BUCKET_BUDGET // (n * n))
        for blo in range(k, k2, smax):
            ids = order[blo:min(k2, blo + smax)]
            stacked = np.stack([np.asarray(nodes_list[s], dtype=float)
                                for s in ids])
            dist = model.pairwise_batch(stacked)
            bdist, bside = model.boundary_batch(stacked)
            for q, s in enumerate(ids.tolist()):
                _, north, _ = _greedy_fast_core(
                    model, np.asarray(nodes_list[s]), False,
                    dist=dist[q], bdist=bdist[q], bside=bside[q])
                parities[s] = north & 1
        k = k2
    return parities


def batched_region_cut_parities(distance: int, regions: list,
                                nodes_list: list, w_ano: float = 0.0,
                                arena: Optional[ScratchArena] = None
                                ) -> np.ndarray:
    """North-cut parities for a chunk where every shot has its own region.

    The end-to-end campaign's oracle and detected decodes hand each
    shot a different :class:`AnomalousRegion` (the true strike, or the
    detection unit's estimate — whose onset varies shot to shot).
    Equals, bit for bit,

    ``[greedy_cut_parity(DistanceModel(distance, reg, w_ano), nodes)
    for reg, nodes in zip(regions, nodes_list)]``

    (with the uniform model for ``reg is None`` shots).  With
    ``w_ano == 0`` and in-envelope coordinates the whole chunk runs
    through the integer engine, which folds the per-shot region boxes
    into its bucket tensors — no per-region grouping needed.  Outside
    that envelope shots group by :func:`region_signature` and each
    group decodes through :func:`batched_cut_parities` (integer engine,
    float bucketed tier, or per-shot core — whatever its model admits).

    A shot's entry in ``regions`` may also be a *sequence* of regions
    (a multi-event scenario shot).  An empty sequence is the uniform
    model and a length-1 sequence is exactly its single region (both
    bit-identical to the legacy entry forms); two or more regions
    decode through the certified per-shot core under a
    :class:`~repro.decoding.weights.MultiRegionDistanceModel` — the
    fallback-first tier the scenario subsystem contracts (extending the
    integer envelope to multi-box shots is follow-on work).
    """
    S = len(nodes_list)
    if len(regions) != S:
        raise ValueError("need exactly one region (or None) per shot")
    out = np.zeros(S, dtype=np.int8)
    if S == 0:
        return out
    if arena is None:
        arena = ScratchArena()

    sub_nodes: list = []
    sub_regs: list = []
    sub_idx: list = []
    multi: list = []
    for s, nodes in enumerate(nodes_list):
        nodes = np.asarray(nodes)
        if not len(nodes):
            continue
        reg = regions[s]
        if isinstance(reg, (list, tuple)):
            if len(reg) == 0:
                reg = None
            elif len(reg) == 1:
                reg = reg[0]
            else:
                multi.append((s, tuple(reg), nodes))
                continue
        sub_nodes.append(nodes)
        sub_regs.append(reg)
        sub_idx.append(s)

    for s, regs, nodes in multi:
        model = MultiRegionDistanceModel(distance, regs, w_ano)
        out[s] = _greedy_fast_core(model, nodes, False)[1] & 1

    if not sub_nodes:
        return out

    allc = np.concatenate(sub_nodes)
    if (w_ano == 0.0 and _coords_eligible(distance, allc)
            and all(r is None or _region_ok(distance, r)
                    for r in sub_regs)
            and len(sub_nodes) * max(map(len, sub_nodes)) < 2**31):
        parities, _ = _decode_engine(DistanceModel(distance), sub_nodes,
                                     arena, False, allc, regions=sub_regs)
        out[sub_idx] = parities
        return out

    groups: dict = {}
    for pos, reg in enumerate(sub_regs):
        groups.setdefault(region_signature(reg), []).append(pos)
    for positions in groups.values():
        reg = sub_regs[positions[0]]
        model = (DistanceModel(distance, reg, w_ano) if reg is not None
                 else DistanceModel(distance))
        par = batched_cut_parities(model, [sub_nodes[p] for p in positions],
                                   arena=arena)
        for p, v in zip(positions, par.tolist(), strict=True):
            out[sub_idx[p]] = v
    return out


def streaming_cut_parity(distance: int, region, nodes: np.ndarray,
                         w_ano: float = 0.0,
                         arena: Optional[ScratchArena] = None) -> int:
    """North-cut parity of one streamed shot under an optional region.

    The online driver's decode entry point
    (:mod:`repro.streaming.driver`): a single-shot call into the
    region-bucketed engine, so the streaming path and the batched
    campaign path share one decode implementation — and, via ``arena``,
    one reusable scratch allocation across a trial sequence.
    """
    return int(batched_region_cut_parities(distance, [region], [nodes],
                                           w_ano, arena=arena)[0])


def batched_decode(model: DistanceModel, nodes_list: list,
                   arena: Optional[ScratchArena] = None
                   ) -> list[DecodeResult]:
    """Full :class:`DecodeResult` per shot, batched.

    Certified equal — match lists, order and weights — to
    ``[greedy_decode_fast(model, nodes) for nodes in nodes_list]``.
    Used by the equivalence suite; campaigns consume
    :func:`batched_cut_parities` instead.
    """
    S = len(nodes_list)
    if arena is None:
        arena = ScratchArena()
    results: list = [None] * S
    sub_nodes, sub_idx = [], []
    for s, nodes in enumerate(nodes_list):
        nodes = np.asarray(nodes)
        if len(nodes) == 0:
            results[s] = DecodeResult.from_matches([], 0.0)
        else:
            sub_nodes.append(nodes)
            sub_idx.append(s)
    if not sub_nodes:
        return results

    allc = np.concatenate(sub_nodes)
    eligible = (_chunk_eligible(model, allc)
                and len(sub_nodes) * max(map(len, sub_nodes)) < 2**31)
    if eligible and model.region is not None:
        # Match-list order around duplicate coordinates inside a region
        # follows the per-shot core's clique grouping; parities agree
        # either way, but exact list equality keeps those shots on the
        # reference core.
        for nodes in sub_nodes:
            if len(np.unique(nodes, axis=0)) != len(nodes):
                eligible = False
                break
    if not eligible:
        for s, nodes in zip(sub_idx, sub_nodes, strict=True):
            results[s] = greedy_decode_fast(model, nodes)
        return results

    _, accepted = _decode_engine(model, sub_nodes, arena, True, allc)
    for s, acc in zip(sub_idx, accepted, strict=True):
        matches = [Match(int(a), int(b)) for a, b, _ in acc]
        weight = 0.0
        for _, _, w in acc:
            weight += w
        results[s] = DecodeResult.from_matches(matches, weight)
    return results
