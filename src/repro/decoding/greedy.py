"""Greedy radius-growing decoder (QECOOL / NISQ+ family).

The paper's hardware evaluation targets the greedy decoder of
Ueno et al. (QECOOL) / Holmes et al. (NISQ+): grow a search radius
``i = 1 .. d`` and, at each radius, greedily match active nodes that can
be connected by a path no longer than ``i`` (to another active node or to
a boundary).  Because lattice distance equals Manhattan distance, path
length checks are O(1); with a known anomalous region the distance
evaluation simply considers the extra via-region candidate paths of
Fig. 6(c) -- the Q3DE modification.

Processing candidate pairs in globally sorted distance order is
equivalent to radius growth with a deterministic tie-break and is how we
implement it.
"""

from __future__ import annotations

import numpy as np

from repro.decoding.decoder_base import DecodeResult, Match
from repro.decoding.weights import NORTH, DistanceModel

_UPPER_MASK = np.zeros((0, 0), dtype=bool)


def _upper_mask(n: int) -> np.ndarray:
    """Cached strict upper-triangle predicate ``i < j`` as an (n, n) view.

    ANDing this into a keep matrix selects the same entries as
    ``np.triu(keep, k=1)`` without materializing a second full matrix —
    the index predicate is built once (grow-on-demand) and reused, so
    the candidate build touches half the memory per decode.
    """
    global _UPPER_MASK
    if _UPPER_MASK.shape[0] < n:
        size = max(n, 2 * _UPPER_MASK.shape[0])
        idx = np.arange(size)
        _UPPER_MASK = idx[:, None] < idx[None, :]
    return _UPPER_MASK[:n, :n]


def _greedy_fast_core(model: DistanceModel, nodes: np.ndarray,
                      collect_matches: bool, dist=None, bdist=None,
                      bside=None):
    """Shared pruned acceptance loop; returns (matches, north, weight).

    ``matches`` is ``None`` unless ``collect_matches`` — the batched shot
    engine only needs the north-cut parity, and skipping the ``Match``
    construction and re-scan saves a meaningful slice of each decode.

    ``dist``/``bdist``/``bside`` may be supplied precomputed (the
    region-bucketed engine slices them out of
    :meth:`DistanceModel.pairwise_batch` / :meth:`boundary_batch`
    tensors, which are bit-equal to the per-shot methods); when omitted
    they are computed here exactly as before.
    """
    n = len(nodes)
    if dist is None:
        dist = model.pairwise_int(nodes)
        if dist is None:  # rare: non-integer nodes or weighted region
            dist = model.pairwise(nodes)
    if bdist is None:
        bdist, bside = model.boundary(nodes)
    integral = dist.dtype != np.float64

    # Zero-distance pairs (nodes inside a w_ano = 0 box, or coordinate
    # duplicates) sort before every other candidate — boundary distances
    # are always >= 1 — and form disjoint cliques, because "distance
    # zero" is transitive here.  The stable distance order therefore
    # pairs each clique's members consecutively by index; building those
    # matches directly removes the O(|clique|^2) zero candidates from
    # the sort and the loop.
    matched = np.zeros(n, dtype=bool)
    zero_pairs: list[tuple[int, int]] = []
    if integral and model.region is not None:
        zero = dist == 0
        if int(np.count_nonzero(zero)) > n:  # any off-diagonal zeros
            rep = np.argmax(zero, axis=1)  # first zero column = clique rep
            grouped = np.argsort(rep, kind="stable")
            reps_sorted = rep[grouped]
            starts = np.flatnonzero(
                np.r_[True, reps_sorted[1:] != reps_sorted[:-1]])
            ends = np.r_[starts[1:], len(grouped)]
            for lo_idx, hi_idx in zip(starts.tolist(), ends.tolist(), strict=True):
                members = grouped[lo_idx:hi_idx]
                for k in range(0, len(members) - 1, 2):
                    a, b = int(members[k]), int(members[k + 1])
                    zero_pairs.append((a, b))
                    matched[a] = matched[b] = True
            zero_pairs.sort()  # legacy acceptance order: ascending in a

    free = ~matched
    thr = bdist.astype(np.int16) if integral else bdist
    keep = dist <= np.minimum(thr[:, None], thr[None, :])
    if zero_pairs:
        keep &= free[:, None] & free[None, :]
    keep &= _upper_mask(n)
    iu, ju = np.nonzero(keep)
    bfree = np.flatnonzero(free)

    cand_d = np.concatenate([dist[iu, ju].astype(np.float64), bdist[bfree]])
    cand_a = np.concatenate([iu, bfree])
    cand_b = np.concatenate([ju, bside[bfree]]).astype(np.int64)
    if integral:  # radix-sortable integer keys; same order as float sort
        order = np.argsort(cand_d.astype(np.int64), kind="stable")
    else:
        order = np.argsort(cand_d, kind="stable")
    a_s = cand_a[order].tolist()
    b_s = cand_b[order].tolist()
    w_s = cand_d[order].tolist()

    taken = bytearray(matched.tobytes())
    accepted: list[tuple[int, int]] = list(zero_pairs)
    north = 0
    weight = 0.0
    remaining = n - 2 * len(zero_pairs)
    for a, b, w in zip(a_s, b_s, w_s, strict=True):
        if taken[a]:
            continue
        if b >= 0:  # node-node candidate
            if taken[b]:
                continue
            taken[a] = taken[b] = True
            remaining -= 2
        else:  # boundary candidate
            taken[a] = True
            remaining -= 1
            if b == NORTH:
                north += 1
        accepted.append((a, b))
        weight += w
        if remaining == 0:
            break
    if not collect_matches:
        return None, north, weight
    return [Match(a, b) for a, b in accepted], north, weight


def greedy_decode_fast(model: DistanceModel, nodes: np.ndarray) -> DecodeResult:
    """Greedy matching with candidate pruning; exactly equals
    :meth:`GreedyDecoder.decode` on every input.

    A pair candidate ``(i, j)`` with ``dist[i, j] > bdist[i]`` can never
    be accepted by the distance-ordered loop: node ``i``'s boundary
    candidate sorts strictly earlier (ties sort pairs first, so only
    *strictly* cheaper boundaries prune), and a boundary candidate always
    leaves its node matched.  Dropping those pairs — usually the vast
    majority of the O(n^2) candidate list — shrinks the sort and the
    Python acceptance loop without changing a single accepted match,
    which is what lets the batched shot engine decode at campaign scale.
    """
    nodes = np.asarray(nodes)
    if len(nodes) == 0:
        return DecodeResult.from_matches([], 0.0)
    matches, _, weight = _greedy_fast_core(model, nodes, True)
    return DecodeResult.from_matches(matches, weight)


def greedy_cut_parity(model: DistanceModel, nodes: np.ndarray) -> int:
    """North-cut parity of the fast greedy matching, without building it.

    Equals ``greedy_decode_fast(model, nodes).correction_cut_parity``;
    the Monte-Carlo hot path only ever consumes this bit.
    """
    nodes = np.asarray(nodes)
    if len(nodes) == 0:
        return 0
    _, north, _ = _greedy_fast_core(model, nodes, False)
    return north & 1


class FastGreedyDecoder:
    """Drop-in :class:`GreedyDecoder` running the pruned fast path."""

    def __init__(self, model: DistanceModel):
        self.model = model

    def decode(self, nodes: np.ndarray) -> DecodeResult:
        return greedy_decode_fast(self.model, nodes)


class GreedyDecoder:
    """Greedy distance-ordered matching over a :class:`DistanceModel`."""

    def __init__(self, model: DistanceModel):
        self.model = model

    def decode(self, nodes: np.ndarray) -> DecodeResult:
        nodes = np.asarray(nodes)
        n = len(nodes)
        if n == 0:
            return DecodeResult.from_matches([], 0.0)
        dist = self.model.pairwise(nodes)
        bdist, bside = self.model.boundary(nodes)

        # Candidate list: all unordered pairs plus each node's boundary.
        iu, ju = np.triu_indices(n, k=1)
        pair_d = dist[iu, ju]
        cand_d = np.concatenate([pair_d, bdist])
        cand_a = np.concatenate([iu, np.arange(n)])
        cand_b = np.concatenate([ju, bside]).astype(np.int64)
        order = np.argsort(cand_d, kind="stable")

        matched = np.zeros(n, dtype=bool)
        matches: list[Match] = []
        weight = 0.0
        remaining = n
        for idx in order:
            if remaining == 0:
                break
            a = int(cand_a[idx])
            if matched[a]:
                continue
            b = int(cand_b[idx])
            if b >= 0:  # node-node candidate
                if matched[b]:
                    continue
                matched[a] = matched[b] = True
                remaining -= 2
            else:  # boundary candidate
                matched[a] = True
                remaining -= 1
            matches.append(Match(a, b))
            weight += float(cand_d[idx])
        return DecodeResult.from_matches(matches, weight)
