"""Error decoding: 3-D space-time lattices, MWPM and greedy decoders.

The decoding problem (paper Sec. II-A) is minimum-weight perfect matching
of *active nodes* on a 3-D lattice whose axes are the two spatial
directions of the syndrome grid and code-cycle time.  This subpackage
provides:

* :mod:`repro.decoding.graph` -- syndrome-difference lattice construction
  from sampled error arrays;
* :mod:`repro.decoding.weights` -- uniform and anomaly-aware distance
  models (Fig. 6c candidate paths);
* :mod:`repro.decoding.mwpm` -- exact MWPM via blossom matching
  (networkx stands in for Kolmogorov's Blossom V);
* :mod:`repro.decoding.greedy` -- the QECOOL-style greedy radius-growing
  decoder used by the paper's hardware evaluation;
* :mod:`repro.decoding.batched` -- the cross-shot bucketed decode engine
  (certified bit-identical to the per-shot greedy core) that the
  batched shot engine's campaigns run on.
"""

from repro.decoding.graph import SyndromeLattice
from repro.decoding.weights import (DistanceModel, MultiRegionDistanceModel,
                                    NORTH, SOUTH)
from repro.decoding.mwpm import MWPMDecoder
from repro.decoding.greedy import (FastGreedyDecoder, GreedyDecoder,
                                   greedy_cut_parity, greedy_decode_fast)
from repro.decoding.decoder_base import DecodeResult, Match
from repro.decoding.dijkstra import GridDijkstra
from repro.decoding.batched import (ScratchArena, batched_cut_parities,
                                    batched_decode)

__all__ = [
    "SyndromeLattice",
    "DistanceModel",
    "MultiRegionDistanceModel",
    "MWPMDecoder",
    "GreedyDecoder",
    "FastGreedyDecoder",
    "greedy_decode_fast",
    "greedy_cut_parity",
    "batched_cut_parities",
    "batched_decode",
    "ScratchArena",
    "DecodeResult",
    "Match",
    "NORTH",
    "SOUTH",
    "GridDijkstra",
]
