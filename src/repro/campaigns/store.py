"""Content-addressed campaign result store.

The serving layer's cache: finished :class:`CampaignResult`\\ s persist
as one JSON document per ``(spec hash, package version)`` key, so a
repeat request for an identical spec is a file read, not a campaign.
The version rides in the key because a new ``repro`` release may change
results (kernels, estimators, spec defaults) — a cached result is only
authoritative for the code that produced it.

The wire discipline mirrors the checkpoint shards
(:mod:`repro.campaigns.checkpoint`): records carry a CRC-32 over their
payload, writes go to a temporary file in the same directory and land
via ``os.replace`` (atomic on POSIX — a reader never sees a torn
record), and a record that fails *any* validation on read — bad JSON,
wrong type/format/hash/version, CRC mismatch — is treated as a cache
miss, never an error: the result is recomputable by construction, so
corruption costs a recompute, not an outage.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from pathlib import Path
from typing import Optional, Union

from repro.campaigns.results import CampaignResult
from repro.campaigns.specs import spec_hash, spec_to_dict

#: Result record format version (bump on incompatible changes).
FORMAT = 1


def _result_crc(spec_hash_: str, version: str, result: dict) -> int:
    doc = json.dumps([spec_hash_, version, result], sort_keys=True,
                     separators=(",", ":"))
    return zlib.crc32(doc.encode("utf-8"))


def result_record(spec: object, result: CampaignResult,
                  version: str) -> dict:
    """A finished campaign as its CRC-stamped store record."""
    h = spec_hash(spec)
    payload = result.to_dict()
    return {
        "type": "result",
        "format": FORMAT,
        "spec_hash": h,
        "version": version,
        "spec": spec_to_dict(spec),
        "result": payload,
        "crc": _result_crc(h, version, payload),
    }


class ResultStore:
    """A directory of result records keyed by ``(spec_hash, version)``.

    ``version`` defaults to the running ``repro.__version__``; a store
    directory may hold records from several versions side by side
    (``<spec_hash>-<version>.json``), and each :class:`ResultStore`
    instance sees only its own version's slice — the cache-keying rule
    that makes an upgraded server recompute rather than serve stale
    results.
    """

    def __init__(self, directory: Union[str, Path],
                 version: Optional[str] = None):
        if version is None:
            import repro
            version = repro.__version__
        self.directory = Path(directory)
        self.version = version

    def path(self, spec_hash_: str) -> Path:
        """Where this store keeps the record for ``spec_hash_``."""
        return self.directory / f"{spec_hash_}-{self.version}.json"

    # ------------------------------------------------------------------
    def put(self, spec: object, result: CampaignResult) -> dict:
        """Durably store a finished campaign; returns the stored record.

        tmp + ``os.replace``: concurrent writers of the same key (two
        servers sharing a store) each land a complete record and the
        last replace wins — both are valid, being pure functions of the
        same spec.
        """
        record = result_record(spec, result, self.version)
        path = self.path(record["spec_hash"])
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(
            f".{path.name}.tmp-{os.getpid()}-{threading.get_ident()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return record

    def get(self, spec: object) -> Optional[dict]:
        """The stored record for ``spec`` under this version, or ``None``."""
        return self.get_hash(spec_hash(spec))

    def get_hash(self, spec_hash_: str) -> Optional[dict]:
        """Look a record up by spec hash alone (the HTTP status path).

        Any malformation — unreadable file, bad JSON, wrong
        type/format/key fields, CRC mismatch — is a miss (``None``):
        a corrupted cache entry must cost a recompute, never a crash.
        The next :meth:`put` atomically replaces the damaged file.
        """
        try:
            text = self.path(spec_hash_).read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            record = json.loads(text)
        except ValueError:
            return None
        if not isinstance(record, dict) or record.get("type") != "result":
            return None
        if record.get("format") != FORMAT:
            return None
        if (record.get("spec_hash") != spec_hash_
                or record.get("version") != self.version):
            return None
        result = record.get("result")
        if not isinstance(result, dict):
            return None
        if record.get("crc") != _result_crc(spec_hash_, self.version,
                                            result):
            return None
        return record
