"""Decoder re-execution with rollback (paper Sec. VI-C).

On a detection at cycle ``t`` with latency ``c_lat``, the anomaly began
around ``t - c_lat``; decode decisions made since ``t - c_lat - d`` were
computed without knowledge of the anomaly and must be revisited.  The
rollback controller:

1. refuses if the host CPU already consumed a register entry corrected
   after the rollback point (rolling back the host is out of scope);
2. drops the affected matching-queue batches and Pauli-frame updates;
3. marks affected classical-register entries "not-error-corrected";
4. returns the retained syndrome layers so the decoding unit can
   re-execute with anomaly-aware weights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.buffers import MatchingQueue, SyndromeQueue
from repro.arch.pauli_frame import ClassicalRegister, PauliFrame


class RollbackDenied(Exception):
    """The host CPU already consumed data the rollback would revoke."""


@dataclass
class RollbackOutcome:
    """What a successful rollback handed back to the decoding unit."""

    rollback_cycle: int
    replay_layers: list[np.ndarray]
    replay_start_cycle: int
    dropped_batches: int
    uncorrected_registers: list[int]
    undone_frame_updates: int


class RollbackController:
    """Coordinates the buffers of Fig. 1 through a rollback.

    Args:
        syndrome_queue: retained syndrome layers (window >= c_lat + d).
        matching_queue: batched decode-output journal.
        pauli_frame: the journaled Pauli frame.
        register: the classical register.
        distance: current code distance ``d`` (sets rollback depth).
        c_lat: detection latency in cycles.
    """

    def __init__(
        self,
        syndrome_queue: SyndromeQueue,
        matching_queue: MatchingQueue,
        pauli_frame: PauliFrame,
        register: ClassicalRegister,
        distance: int,
        c_lat: int,
    ):
        self.syndrome_queue = syndrome_queue
        self.matching_queue = matching_queue
        self.pauli_frame = pauli_frame
        self.register = register
        self.distance = distance
        self.c_lat = c_lat

    def rollback_depth(self) -> int:
        """How far before the detection the state must rewind: c_lat + d."""
        return self.c_lat + self.distance

    def execute(self, detection_cycle: int) -> RollbackOutcome:
        """Roll every unit back to cycle ``detection_cycle - c_lat - d``.

        Raises :class:`RollbackDenied` if a ``read`` already exposed an
        affected register entry to the host CPU (Sec. VI-C: rolling back
        the host is "too costly", so the rollback is aborted).
        """
        target = max(0, detection_cycle - self.rollback_depth())
        if self.register.any_read_corrected_after(target):
            raise RollbackDenied(
                f"host already read a register entry corrected after "
                f"cycle {target}")

        oldest = self.syndrome_queue.oldest_cycle()
        if oldest is not None and oldest > target:
            # The queue no longer holds the full window; re-execute from
            # what is retained (bounded staleness, still an improvement).
            target = oldest

        dropped = self.matching_queue.rollback_to(target)
        undone = self.pauli_frame.rollback_to(target)
        affected = self.register.entries_corrected_after(target)
        for index in affected:
            self.register.uncorrect(index)
        replay = self.syndrome_queue.layers_since(target)
        return RollbackOutcome(
            rollback_cycle=target,
            replay_layers=[rec.layer for rec in replay],
            replay_start_cycle=replay[0].cycle if replay else target,
            dropped_batches=len(dropped),
            uncorrected_registers=affected,
            undone_frame_updates=len(undone),
        )

    def read_stall_cycles(self) -> int:
        """Worst-case extra wait for a ``read`` issued right after rollback.

        The re-executed decoder must re-match ``d + c_lat`` cycles before
        the register entry is corrected again, versus ``d`` without a
        rollback -- the ``1 + c_lat / d`` factor of Sec. VIII-B.
        """
        return self.distance + self.c_lat
