"""Tests for noise models and the cosmic-ray process."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.noise import AnomalousRegion, CosmicRayModel, PhenomenologicalNoise
from repro.noise.cosmic_ray import CosmicRayStrike


class TestAnomalousRegion:
    def test_bounds(self):
        reg = AnomalousRegion(2, 3, 4)
        assert reg.row_hi == 6
        assert reg.col_hi == 7

    def test_contains_node(self):
        reg = AnomalousRegion(1, 1, 2)
        assert reg.contains_node(1, 1)
        assert reg.contains_node(2, 2)
        assert not reg.contains_node(3, 1)
        assert not reg.contains_node(0, 1)

    def test_active_window(self):
        reg = AnomalousRegion(0, 0, 2, t_lo=5, t_hi=10)
        assert not reg.active_at(4)
        assert reg.active_at(5)
        assert reg.active_at(9)
        assert not reg.active_at(10)

    def test_open_ended_time(self):
        reg = AnomalousRegion(0, 0, 2, t_lo=3)
        assert reg.active_at(10 ** 9)

    def test_centered_fits_lattice(self):
        reg = AnomalousRegion.centered(9, 4)
        assert 0 <= reg.row_lo and reg.row_hi <= 8
        assert 0 <= reg.col_lo and reg.col_hi <= 9

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            AnomalousRegion(0, 0, 0)
        with pytest.raises(ValueError):
            AnomalousRegion(-1, 0, 2)
        with pytest.raises(ValueError):
            AnomalousRegion(0, 0, 2, t_lo=5, t_hi=4)


class TestPhenomenologicalNoise:
    def test_shapes(self, rng):
        noise = PhenomenologicalNoise(5, 0.01)
        v, h, m = noise.sample(7, rng)
        assert v.shape == (7, 5, 5)
        assert h.shape == (7, 4, 4)
        assert m.shape == (7, 4, 5)

    def test_zero_rate_is_silent(self, rng):
        noise = PhenomenologicalNoise(5, 0.0)
        v, h, m = noise.sample(10, rng)
        assert not v.any() and not h.any() and not m.any()

    def test_rate_statistics(self):
        rng = np.random.default_rng(0)
        noise = PhenomenologicalNoise(9, 0.05)
        v, _, _ = noise.sample(2000, rng)
        assert abs(v.mean() - 0.05) < 0.005

    def test_anomalous_region_has_elevated_rate(self):
        rng = np.random.default_rng(1)
        reg = AnomalousRegion(2, 2, 3)
        noise = PhenomenologicalNoise(9, 0.001, p_ano=0.5, region=reg)
        _, _, m = noise.sample(3000, rng)
        inside = m[:, 3, 3].mean()
        outside = m[:, 0, 0].mean()
        assert inside > 0.4
        assert outside < 0.01

    def test_region_time_bounds_respected(self):
        rng = np.random.default_rng(2)
        reg = AnomalousRegion(2, 2, 3, t_lo=100, t_hi=200)
        noise = PhenomenologicalNoise(9, 0.0, p_ano=0.5, region=reg)
        _, _, m = noise.sample(300, rng)
        assert not m[:100].any()
        assert m[100:200, 3, 3].mean() > 0.3
        assert not m[200:].any()

    def test_masks_cover_region_edges(self):
        reg = AnomalousRegion(0, 0, 2)
        noise = PhenomenologicalNoise(5, 0.01, region=reg)
        v_mask, h_mask, m_mask = noise.anomalous_masks
        assert m_mask[0, 0] and m_mask[1, 1]
        assert not m_mask[2, 2]
        # Edges incident on node (0, 0): vertical k=0 and k=1.
        assert v_mask[0, 0] and v_mask[1, 0]

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            PhenomenologicalNoise(5, 1.5)
        with pytest.raises(ValueError):
            PhenomenologicalNoise(1, 0.1)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 7), st.integers(1, 5))
    def test_masks_nonempty_for_any_region(self, d, size):
        reg = AnomalousRegion.centered(d, min(size, d - 1))
        noise = PhenomenologicalNoise(d, 0.01, region=reg)
        v_mask, h_mask, m_mask = noise.anomalous_masks
        assert m_mask.any()
        assert v_mask.any()


class TestCosmicRayModel:
    def test_reference_parameters(self):
        model = CosmicRayModel()
        assert model.lifetime_cycles == 25_000
        assert model.strike_probability_per_cycle == pytest.approx(1e-6)
        assert model.duty_fraction == pytest.approx(0.025)

    def test_strike_count_scales_with_frequency(self):
        quiet = CosmicRayModel(frequency_hz=0.1,
                               rng=np.random.default_rng(3))
        loud = CosmicRayModel(frequency_hz=10.0,
                              rng=np.random.default_rng(3))
        cycles = 5_000_000
        assert len(loud.sample_strikes(cycles)) > len(
            quiet.sample_strikes(cycles))

    def test_strikes_sorted_and_in_window(self):
        model = CosmicRayModel(frequency_hz=50.0,
                               rng=np.random.default_rng(4))
        strikes = model.sample_strikes(1_000_000)
        assert strikes == sorted(strikes, key=lambda s: s.cycle)
        assert all(0 <= s.cycle < 1_000_000 for s in strikes)

    def test_strike_positions_fit_region(self):
        model = CosmicRayModel(frequency_hz=100.0, rows=10, cols=10,
                               anomaly_size=4,
                               rng=np.random.default_rng(5))
        for s in model.sample_strikes(500_000):
            assert 0 <= s.row <= 6
            assert 0 <= s.col <= 6

    def test_event_windows_tile_the_horizon(self):
        model = CosmicRayModel(frequency_hz=200.0,
                               rng=np.random.default_rng(6))
        horizon = 2_000_000
        cursor = 0
        for start, end, _ in model.iter_event_windows(horizon):
            assert start == cursor
            assert end > start
            cursor = end
        assert cursor == horizon

    def test_event_windows_serialize_overlaps(self):
        model = CosmicRayModel(frequency_hz=500.0,
                               rng=np.random.default_rng(7))
        anomalous = [(s, e) for s, e, strike in
                     model.iter_event_windows(3_000_000)
                     if strike is not None]
        # pairwise-adjacent zip: truncation is the point, not a bug
        for (s1, e1), (s2, e2) in zip(  # noqa: B905
                anomalous, anomalous[1:]):
            assert e1 <= s2

    def test_strike_active_window(self):
        strike = CosmicRayStrike(100, 0, 0, 4, duration_cycles=50)
        assert not strike.active_at(99)
        assert strike.active_at(100)
        assert strike.active_at(149)
        assert not strike.active_at(150)

    def test_error_rate_decay(self):
        strike = CosmicRayStrike(0, 0, 0, 4, duration_cycles=1000)
        p, p_ano, tau = 1e-3, 0.5, 25_000.0
        assert strike.error_rate_at(0, p_ano, p, tau) == pytest.approx(0.5)
        late = strike.error_rate_at(250_000, p_ano, p, tau)
        assert late == pytest.approx(p, abs=1e-4)
        mid = strike.error_rate_at(25_000, p_ano, p, tau)
        assert p < mid < p_ano

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CosmicRayModel(frequency_hz=-1.0)
        with pytest.raises(ValueError):
            CosmicRayModel(lifetime_s=0.0)
        with pytest.raises(ValueError):
            CosmicRayModel(anomaly_size=0)
