"""Logical-memory Monte-Carlo experiments (paper Sec. VII-A).

Estimates the logical Pauli-X error rate per code cycle of ``d``-cycle
idling: sample per-cycle errors, extract the syndrome-difference lattice,
decode (greedy or exact MWPM; uniform or anomaly-aware weights), and
declare failure when the residual error crosses the north-boundary cut.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.decoding.decoder_base import Decoder
from repro.decoding.graph import SyndromeLattice
from repro.decoding.greedy import GreedyDecoder
from repro.decoding.mwpm import MWPMDecoder
from repro.decoding.weights import DistanceModel, relative_anomalous_weight
from repro.noise.models import AnomalousRegion, PhenomenologicalNoise
from repro.sim.montecarlo import BinomialEstimate


@dataclass(frozen=True)
class LogicalErrorEstimate:
    """A measured logical failure rate."""

    failures: int
    samples: int
    cycles: int

    @property
    def estimate(self) -> BinomialEstimate:
        return BinomialEstimate(self.failures, self.samples)

    @property
    def per_run(self) -> float:
        return self.failures / self.samples

    @property
    def per_cycle(self) -> float:
        """Failure probability per code cycle: 1 - (1 - P)^(1/T)."""
        p_run = self.per_run
        if p_run >= 1.0:
            return 1.0
        return 1.0 - (1.0 - p_run) ** (1.0 / self.cycles)

    @property
    def per_cycle_std_error(self) -> float:
        """Delta-method standard error of :attr:`per_cycle`.

        ``per_cycle = f(P) = 1 - (1 - P)^(1/T)`` with ``P`` the per-run
        rate, so ``se(per_cycle) = se(P) * f'(P)`` with
        ``f'(P) = (1 - P)^(1/T - 1) / T``.  (Dividing by ``T`` alone
        understates the error once ``P`` is not small.)
        """
        p_run = self.per_run
        if p_run >= 1.0:
            # f'(P) diverges as P -> 1; the estimate saturates at 1.0 and
            # the linearized error bar is meaningless, so fall back to the
            # raw per-run uncertainty scaled by 1/T.
            return self.estimate.std_error / self.cycles
        derivative = (1.0 - p_run) ** (1.0 / self.cycles - 1.0) / self.cycles
        return self.estimate.std_error * derivative


class MemoryExperiment:
    """One configuration of the idling experiment.

    Args:
        distance: code distance ``d``.
        p: physical error rate per cycle.
        region: optional anomalous region (``None`` = MBBE free).
        p_ano: anomalous error rate (paper: 0.5).
        decoder: ``"greedy"`` (default; tractable at paper scales) or
            ``"mwpm"`` (exact blossom).
        informed: if True the decoder knows the region -- the paper's
            "with rollback" re-executed decoding; if False it decodes
            with uniform weights ("without rollback").
        cycles: number of noisy rounds (default ``d``).
    """

    def __init__(
        self,
        distance: int,
        p: float,
        region: Optional[AnomalousRegion] = None,
        p_ano: float = 0.5,
        decoder: str = "greedy",
        informed: bool = False,
        cycles: Optional[int] = None,
    ):
        if decoder not in ("greedy", "mwpm"):
            raise ValueError("decoder must be 'greedy' or 'mwpm'")
        self.distance = distance
        self.p = p
        self.region = region
        self.p_ano = p_ano
        self.decoder = decoder
        self.informed = informed
        self.cycles = cycles if cycles is not None else distance
        self.noise = PhenomenologicalNoise(distance, p, p_ano, region)
        self.lattice = SyndromeLattice(distance)
        self._decoder = self._build_decoder(decoder)

    def _build_decoder(self, kind: str) -> Decoder:
        if self.informed and self.region is not None:
            w_ano = relative_anomalous_weight(self.p, self.p_ano)
            model = DistanceModel(self.distance, self.region, w_ano)
        else:
            model = DistanceModel(self.distance)
        if kind == "mwpm":
            return MWPMDecoder(model)
        return GreedyDecoder(model)

    # ------------------------------------------------------------------
    def run_once(self, rng: np.random.Generator) -> bool:
        """One shot: True iff a logical X error survived decoding."""
        v, h, m = self.noise.sample(self.cycles, rng)
        nodes = self.lattice.detection_events(v, h, m)
        result = self._decoder.decode(nodes)
        error_parity = self.lattice.error_cut_parity(v)
        return bool(error_parity ^ result.correction_cut_parity)

    def run(self, samples: int,
            rng: Optional[np.random.Generator] = None,
            workers: int = 0,
            batch_size: Optional[int] = None,
            seed: Optional[int] = None,
            target_rel_width: Optional[float] = None,
            packing: str = "bits",
            ) -> LogicalErrorEstimate:
        """Estimate the logical failure rate over ``samples`` shots.

        This is now a thin shim over the unified campaign API — the
        ``workers >= 1`` path builds a
        :class:`repro.campaigns.MemorySpec` and calls
        :func:`repro.campaigns.run`, so its results are bit-identical
        per ``(seed, batch_size)`` to both the pre-redesign
        ``BatchShotRunner`` path and a directly run spec.  Prefer the
        campaign API for new code: it adds sweeps, pluggable executors,
        checkpoint/resume and provenance that this signature cannot
        express.

        ``workers = 0`` (default) runs the original sequential per-shot
        path.  ``workers >= 1`` runs the batched shot engine
        (:mod:`repro.sim.batch`): bit-packed sampling and word-wise
        syndrome extraction (``packing="bits"``, the default; bit-equal
        to the ``packing="none"`` float reference per ``(seed,
        batch_size)``), the certified-equal fast matching core, and —
        for ``workers > 1`` — a process pool with per-worker decoder
        reuse.  Batched campaigns are reproducible from ``seed`` (drawn
        from ``rng`` when not given) and can stop early once the Wilson
        interval is narrower than ``target_rel_width`` times the mean.
        """
        if samples < 1:
            raise ValueError("need at least one sample")
        # reprolint: disable=RL001 -- rng=None is the caller's explicit
        # opt-out of reproducibility; campaigns always pass a seeded rng
        rng = rng if rng is not None else np.random.default_rng()
        if workers == 0:
            failures = sum(self.run_once(rng) for _ in range(samples))
            return LogicalErrorEstimate(failures, samples, self.cycles)

        from repro import campaigns
        if seed is None:
            seed = int(rng.integers(2 ** 63))
        spec = campaigns.MemorySpec(
            distance=self.distance, p=self.p, samples=samples,
            region=self.region, p_ano=self.p_ano, decoder=self.decoder,
            informed=self.informed, cycles=self.cycles, seed=seed,
            batch_size=batch_size, target_rel_width=target_rel_width,
            packing=packing)
        executor = campaigns.default_executor(workers)
        return campaigns.run(spec, executor=executor).detail


def logical_error_rate(
    distance: int,
    p: float,
    samples: int,
    region: Optional[AnomalousRegion] = None,
    informed: bool = False,
    decoder: str = "greedy",
    p_ano: float = 0.5,
    seed: Optional[int] = None,
    workers: int = 0,
    batch_size: Optional[int] = None,
    target_rel_width: Optional[float] = None,
    packing: str = "bits",
) -> LogicalErrorEstimate:
    """Convenience one-call estimator (used by benches and examples)."""
    experiment = MemoryExperiment(
        distance, p, region=region, p_ano=p_ano,
        decoder=decoder, informed=informed)
    return experiment.run(samples, np.random.default_rng(seed),
                          workers=workers, batch_size=batch_size,
                          target_rel_width=target_rel_width,
                          packing=packing)


def fit_scaling_exponent(
    rates: dict[int, float]) -> tuple[float, float]:
    """Fit ``p_L(d) = A * base**(floor(d/2) + 1)`` to per-distance rates.

    Returns ``(A, base)``; used to extrapolate Monte-Carlo data to the
    low-error regime, as in the paper's first-order analysis.
    """
    ds = sorted(d for d, r in rates.items() if r > 0)
    if len(ds) < 2:
        raise ValueError("need at least two distances with nonzero rates")
    xs = np.array([math.floor(d / 2) + 1 for d in ds], dtype=float)
    ys = np.array([math.log(rates[d]) for d in ds])
    slope, intercept = np.polyfit(xs, ys, 1)
    return math.exp(intercept), math.exp(slope)
