"""Cosmic-ray timeline: a day in the life of a logical qubit.

Simulates hours of wall-clock operation of one logical qubit under the
McEwen et al. strike process (f_ano = 1 Hz for a logical-qubit-sized
patch, tau_ano = 25 ms, 1 us code cycles) and compares three policies:

* ``static``    -- nothing reacts; every strike exposes the qubit at the
  reduced effective distance for its whole lifetime, decoded naively;
* ``rollback``  -- decoder re-execution only (exposure is still the full
  lifetime, but at the informed d - d_ano instead of d - 2 d_ano);
* ``q3de``      -- detection + expansion + rollback: after the detection
  latency the code is expanded and the exposure window closes.

Uses the same effective-rate bookkeeping as the paper's Eq. (1) and the
Sec. VIII-A scaling evaluation, driven by actual sampled strikes.

Run:  python examples/cosmic_ray_timeline.py
"""

import numpy as np

from repro.analysis.firstorder import predicted_reduction
from repro.noise import CosmicRayModel
from repro.scaling.model import ScalingParameters

DISTANCE = 21
HOURS = 0.5
C_LAT = 30  # detection latency in cycles (Fig. 7 regime)


def run_policy(policy: str, strikes, params: ScalingParameters,
               total_cycles: int) -> float:
    """Average logical error rate per cycle under a reaction policy."""
    base = params.logical_rate(DISTANCE)
    exposed_cycles = 0
    total = 0.0
    for strike in strikes:
        span = strike.duration_cycles
        if policy == "static":
            reduction = predicted_reduction(strike.size, informed=False)
            total += span * params.logical_rate(DISTANCE - reduction)
            exposed_cycles += span
        elif policy == "rollback":
            reduction = predicted_reduction(strike.size, informed=True)
            total += span * params.logical_rate(DISTANCE - reduction)
            exposed_cycles += span
        elif policy == "q3de":
            reduction = predicted_reduction(strike.size, informed=True)
            exposure = min(span, C_LAT)
            total += exposure * params.logical_rate(DISTANCE - reduction)
            total += (span - exposure) * base
            exposed_cycles += exposure
        else:
            raise ValueError(policy)
    total += (total_cycles - sum(s.duration_cycles for s in strikes)) * base
    avg = total / total_cycles
    share = exposed_cycles / total_cycles
    print(f"  {policy:<9} avg p_L/cycle = {avg:.3e}   "
          f"({share:.3%} of time exposed)")
    return avg


def main():
    total_cycles = int(HOURS * 3600 / CosmicRayModel().cycle_s)
    model = CosmicRayModel(rng=np.random.default_rng(2024))
    strikes = model.sample_strikes(total_cycles)
    params = ScalingParameters()

    print(f"Simulating {HOURS} h of operation "
          f"({total_cycles:.2e} code cycles) at d={DISTANCE}")
    print(f"  {len(strikes)} cosmic-ray strikes sampled "
          f"(expected {model.strike_probability_per_cycle * total_cycles:.0f}; "
          f"duty fraction {model.duty_fraction:.1%})\n")

    static = run_policy("static", strikes, params, total_cycles)
    rolled = run_policy("rollback", strikes, params, total_cycles)
    q3de = run_policy("q3de", strikes, params, total_cycles)

    print(f"\n  rollback alone improves the average rate "
          f"{static / rolled:.1f}x")
    print(f"  full Q3DE improves it {static / q3de:.1f}x "
          f"(exposure shortened {25_000 / C_LAT:.0f}x, the paper's "
          f"'~1000x shorter MBBE period')")


if __name__ == "__main__":
    main()
