"""repro.config: one call-time reader for every REPRO_* knob, and the
``python -m repro`` CLI that sits on top of the campaign layer."""

import json

import pytest

from repro import campaigns, config
from repro.campaigns.cli import main, parse_executor


class TestConfig:
    def test_documented_defaults(self, monkeypatch):
        for var in (config.ENV_WORKERS, config.ENV_BACKEND,
                    config.ENV_SAMPLES, config.ENV_SCALE, config.ENV_JSON,
                    config.ENV_JSON_DIR):
            monkeypatch.delenv(var, raising=False)
        assert config.workers() == 0
        assert config.backend() == "numpy"
        assert config.samples() == 200
        assert config.scale() == 1.0
        assert config.json_enabled()
        assert config.json_dir("fallback") == "fallback"

    def test_reads_at_call_time(self, monkeypatch):
        monkeypatch.setenv(config.ENV_WORKERS, "4")
        assert config.workers() == 4
        monkeypatch.setenv(config.ENV_WORKERS, "0")
        assert config.workers() == 0
        monkeypatch.setenv(config.ENV_WORKERS, "-3")
        assert config.workers() == 0  # floored

    def test_samples_scale_interaction(self, monkeypatch):
        monkeypatch.setenv(config.ENV_SAMPLES, "100")
        monkeypatch.setenv(config.ENV_SCALE, "2.5")
        assert config.samples() == 250
        assert config.scale() == 2.5

    def test_backend_normalized(self, monkeypatch):
        monkeypatch.setenv(config.ENV_BACKEND, "  CuPy ")
        assert config.backend() == "cupy"
        monkeypatch.setenv(config.ENV_BACKEND, "")
        assert config.backend() == "numpy"

    def test_json_knobs(self, monkeypatch):
        monkeypatch.setenv(config.ENV_JSON, "off")
        assert not config.json_enabled()
        assert config.json_enabled(argv=["bench.py", "--json"])
        monkeypatch.setenv(config.ENV_JSON_DIR, "/tmp/elsewhere")
        assert config.json_dir("fallback") == "/tmp/elsewhere"

    def test_checkpoint_fsync_knob(self, monkeypatch):
        monkeypatch.delenv(config.ENV_CHECKPOINT_FSYNC, raising=False)
        assert config.checkpoint_fsync()  # durable by default
        for off in ("0", "off", "false", "NO", " 0 "):
            monkeypatch.setenv(config.ENV_CHECKPOINT_FSYNC, off)
            assert not config.checkpoint_fsync()
        monkeypatch.setenv(config.ENV_CHECKPOINT_FSYNC, "1")
        assert config.checkpoint_fsync()

    def test_service_knobs(self, monkeypatch):
        for var in (config.ENV_SERVICE_PORT, config.ENV_SERVICE_THREADS,
                    config.ENV_SERVICE_EXECUTOR):
            monkeypatch.delenv(var, raising=False)
        assert config.service_port() == 8765
        assert config.service_threads() == 2
        assert config.service_executor() == "inline-chunked"
        monkeypatch.setenv(config.ENV_SERVICE_PORT, "9000")
        monkeypatch.setenv(config.ENV_SERVICE_THREADS, "0")
        monkeypatch.setenv(config.ENV_SERVICE_EXECUTOR, " pool:2 ")
        assert config.service_port() == 9000
        assert config.service_threads() == 1  # floored at one runner
        assert config.service_executor() == "pool:2"

    def test_snapshot_keys(self):
        snap = config.snapshot()
        assert set(snap) == {"workers", "backend", "samples", "scale",
                             "json", "checkpoint_fsync", "service_port",
                             "service_threads", "service_executor"}


class TestCli:
    def _write_spec(self, tmp_path, spec):
        path = tmp_path / "spec.json"
        path.write_text(campaigns.spec_to_json(spec))
        return str(path)

    def test_run_prints_result_json(self, tmp_path, capsys):
        spec = campaigns.MemorySpec(distance=3, p=2e-2, samples=16,
                                    seed=1)
        assert main(["run", self._write_spec(tmp_path, spec)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "memory"
        assert doc["provenance"]["spec_hash"] == campaigns.spec_hash(spec)

    def test_run_with_output_and_checkpoint(self, tmp_path, capsys):
        spec = campaigns.MemorySpec(distance=3, p=2e-2, samples=32,
                                    seed=2, batch_size=8)
        out = tmp_path / "result.json"
        code = main(["run", self._write_spec(tmp_path, spec),
                     "--checkpoint", str(tmp_path / "ckpt"),
                     "--output", str(out)])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["counts"]["samples"] == 32
        # Second run resumes every chunk from the shard.
        assert main(["run", self._write_spec(tmp_path, spec),
                     "--checkpoint", str(tmp_path / "ckpt"),
                     "--output", str(out)]) == 0
        assert json.loads(
            out.read_text())["provenance"]["resumed_chunks"] == 4

    def test_run_sweep(self, tmp_path, capsys):
        sweep = campaigns.Sweep(
            campaigns.ThroughputSpec(num_instructions=20,
                                     strike_prob_per_slot=1e-4,
                                     strike_duration_slots=10),
            axes={"architecture": ["mbbe_free", "baseline"]})
        assert main(["run", self._write_spec(tmp_path, sweep)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "sweep"
        assert len(doc["points"]) == 2

    def test_validate_and_hash(self, tmp_path, capsys):
        spec = campaigns.DetectionSpec(distance=5, p=1e-3, p_ano=0.05,
                                       anomaly_size=2, c_win=40, trials=2)
        path = self._write_spec(tmp_path, spec)
        assert main(["validate", path]) == 0
        assert "DetectionSpec" in capsys.readouterr().out
        assert main(["hash", path]) == 0
        assert capsys.readouterr().out.strip() == campaigns.spec_hash(spec)

    def test_bad_spec_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "memory", "distance": 1}')
        assert main(["validate", str(path)]) == 1
        assert "error" in capsys.readouterr().err
        assert main(["run", str(tmp_path / "missing.json")]) == 1

    def test_executor_argument_parsing(self):
        assert parse_executor("inline").whole_request
        assert not parse_executor("inline-chunked").whole_request
        pool = parse_executor("pool:3")
        assert isinstance(pool, campaigns.ProcessPoolExecutor)
        assert pool.workers == 3
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            parse_executor("gpu")

    def test_module_entry_point(self, tmp_path):
        """`python -m repro run` works end to end (the CI smoke step)."""
        import os
        import pathlib
        import subprocess
        import sys

        import repro
        src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        spec = campaigns.ThroughputSpec(num_instructions=10,
                                        strike_prob_per_slot=1e-4,
                                        strike_duration_slots=5)
        path = self._write_spec(tmp_path, spec)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "run", path],
            capture_output=True, text=True, check=True, env=env)
        assert json.loads(proc.stdout)["kind"] == "throughput"