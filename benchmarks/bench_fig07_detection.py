"""Fig. 7: anomaly detection window size, latency, and position error.

Paper setup: p = 1e-3, d = 21, d_ano = 4, confidence 0.99, n_th = 20.
Left panel: required window c_win for 1 % detection errors and the
detection latency, against the error-rate ratio p_ano / p.  Right panel:
the error of the estimated anomaly position.

Expected shape: required window and latency fall steeply as the ratio
grows; the position estimate stays within a couple of nodes.
"""

import time

import pytest

from repro import campaigns
from repro.sim.detection import (
    analytic_required_window,
    empirical_required_window,
)

from _common import emit_json, mc_workers, print_table, scale

DISTANCE = 21
P = 1e-3
ANOMALY_SIZE = 4
N_TH = 20
RATIOS = [10, 20, 50, 100]


@pytest.mark.benchmark(group="fig7")
def bench_fig7_detection_unit(benchmark):
    """Regenerate Fig. 7's three series over the rate-ratio sweep."""
    trials = max(4, int(8 * scale()))

    def run():
        start = time.perf_counter()
        rows = []
        for ratio in RATIOS:
            p_ano = P * ratio
            c_win, perf = empirical_required_window(
                DISTANCE, P, p_ano, ANOMALY_SIZE, n_th=N_TH,
                trials=trials, seed=ratio, workers=mc_workers())
            rows.append((ratio, c_win, perf.mean_latency,
                         perf.mean_position_error))
        return rows, time.perf_counter() - start

    rows, wall = benchmark.pedantic(run, rounds=1, iterations=1)

    emit_json("batch", "fig07_detection", {
        "trials_per_point": trials,
        "wall_clock_s": wall,
        # Domain series keyed by the p_ano/p sweep label; deliberately
        # not "*ratio*"-named so the comparator reads them as drift-only
        # domain data, not engine bars.
        "required_window": {f"pano_over_p_{r}": w for r, w, _, _ in rows},
        "mean_latency_cycles": {f"pano_over_p_{r}": lat
                                for r, _, lat, _ in rows},
        "mean_position_error_nodes": {f"pano_over_p_{r}": err
                                      for r, _, _, err in rows},
    })
    print_table(
        "Fig. 7: anomaly detection (p=1e-3, d=21, d_ano=4, n_th=20)",
        ["p_ano/p", "required c_win", "latency (cycles)",
         "position error (nodes)"],
        rows)

    windows = [r[1] for r in rows]
    latencies = [r[2] for r in rows]
    # Shape: both fall (weakly) as the ratio grows; position stays tight.
    assert windows[-1] <= windows[0]
    assert latencies[-1] <= latencies[0] * 1.5
    assert all(r[3] < 5.0 for r in rows)
    # Analytic model agrees on the trend.
    assert (analytic_required_window(P, P * RATIOS[-1])
            < analytic_required_window(P, P * RATIOS[0]))


@pytest.mark.benchmark(group="fig7")
def bench_fig7_single_operating_point(benchmark):
    """Time one full detection campaign at the paper's operating point.

    Expressed as a declarative ``DetectionSpec`` through
    ``repro.campaigns.run`` — the bench doubles as an API smoke test.
    """
    spec = campaigns.DetectionSpec(
        distance=DISTANCE, p=P, p_ano=0.05, anomaly_size=ANOMALY_SIZE,
        c_win=300, n_th=N_TH, alpha=0.01, trials=3, seed=1)
    executor = campaigns.default_executor(mc_workers())
    result = benchmark(campaigns.run, spec, executor)
    assert result.estimates["miss_rate"] == 0.0


def smoke() -> None:
    """One tiny grid point (bench_smoke marker: import-rot guard)."""
    spec = campaigns.DetectionSpec(distance=7, p=2e-3, p_ano=0.05,
                                   anomaly_size=2, c_win=40, n_th=3,
                                   trials=2, seed=1)
    perf = campaigns.run(
        spec, executor=campaigns.InlineExecutor(whole_request=False)).detail
    assert 0.0 <= perf.miss_rate <= 1.0
    assert analytic_required_window(1e-3, 1e-2) > 0
    assert campaigns.spec_from_json(campaigns.spec_to_json(spec)) == spec
