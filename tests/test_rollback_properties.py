"""Property tests: rollback must hand back exactly what was recorded.

The whole re-execution scheme rests on two invariants:

1. the syndrome layers replayed after a rollback are bit-identical to
   the layers originally streamed in for those cycles (no snapshots, no
   loss);
2. undoing the Pauli-frame journal and replaying the same updates is a
   no-op (updates are involutions applied in order).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arch.buffers import (
    MatchingQueue,
    MatchRecord,
    SyndromeQueue,
)
from repro.arch.pauli_frame import ClassicalRegister, PauliFrame
from repro.core.reexecution import RollbackController


@st.composite
def streams(draw):
    cycles = draw(st.integers(10, 60))
    shape = (4, 5)
    seed = draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(seed)
    layers = (rng.random((cycles, *shape)) < 0.2).astype(np.uint8)
    detection = draw(st.integers(5, cycles - 1))
    c_lat = draw(st.integers(1, 20))
    return layers, detection, c_lat


class TestReplayFidelity:
    @settings(max_examples=40, deadline=None)
    @given(streams())
    def test_replayed_layers_match_originals(self, data):
        layers, detection, c_lat = data
        cycles = len(layers)
        d = 5
        queue = SyndromeQueue((4, 5), window=cycles)  # retain everything
        mq = MatchingQueue(c_win=cycles)
        frame = PauliFrame(1)
        reg = ClassicalRegister()
        ctl = RollbackController(queue, mq, frame, reg, distance=d,
                                 c_lat=c_lat)
        for t in range(cycles):
            queue.push(t, layers[t])
            mq.record(MatchRecord(t, cut_parity=int(layers[t].sum()) & 1,
                                  num_matches=1))
        out = ctl.execute(detection)
        expected_start = max(0, detection - c_lat - d)
        assert out.rollback_cycle == expected_start
        replay = np.stack(out.replay_layers)
        assert np.array_equal(replay, layers[expected_start:])

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 50), st.booleans(),
                              st.booleans()), min_size=1, max_size=40),
           st.integers(0, 50))
    def test_frame_rollback_then_replay_is_identity(self, updates, cut):
        updates = sorted(updates, key=lambda u: u[0])
        frame = PauliFrame(1)
        for cycle, fx, fz in updates:
            frame.apply(cycle, 0, flip_x=fx, flip_z=fz)
        before = (frame.x[0], frame.z[0])
        undone = frame.rollback_to(cut)
        for upd in undone:
            frame.apply(upd.cycle, upd.qubit, upd.flip_x, upd.flip_z)
        assert (frame.x[0], frame.z[0]) == before

    @settings(max_examples=40, deadline=None)
    @given(streams())
    def test_matching_queue_parity_restored_by_replay(self, data):
        """Dropping batches and re-recording the same summaries restores
        the accumulated north-cut parity."""
        layers, detection, _ = data
        cycles = len(layers)
        mq = MatchingQueue(c_win=cycles, c_bat=4)
        records = [MatchRecord(t, cut_parity=int(layers[t].sum()) & 1,
                               num_matches=1) for t in range(cycles)]
        for rec in records:
            mq.record(rec)
        before = mq.total_cut_parity()
        dropped = mq.rollback_to(detection)
        if dropped:
            replay_from = dropped[0].start_cycle
            for rec in records[replay_from:]:
                mq.record(rec)
            assert mq.total_cut_parity() == before
