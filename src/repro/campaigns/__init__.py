"""Unified campaign API: declarative specs, one ``run()``, checkpoints.

The paper's evaluation is a handful of long Monte-Carlo campaigns over
parameter grids.  This package is the single public way to run any of
them:

>>> from repro import campaigns
>>> spec = campaigns.MemorySpec(distance=9, p=0.01, samples=1000,
...                             region="centered", seed=42)
>>> result = campaigns.run(spec)
>>> result.estimates["per_cycle"]          # doctest: +SKIP

* **Specs** (:mod:`~repro.campaigns.specs`) are frozen dataclasses,
  validated at construction and JSON-round-trippable; ``Sweep`` wraps a
  base spec with parameter axes.
* **run(spec, executor=..., checkpoint=...)**
  (:mod:`~repro.campaigns.runner`) dispatches through a registry to the
  batched shot kernels and returns a uniform :class:`CampaignResult`
  with a provenance block.
* **Executors** (:mod:`~repro.campaigns.executors`) decide where chunks
  run: inline, a process pool, or a distributed transport — the
  reference transport is the fault-tolerant filesystem work queue
  (:mod:`~repro.campaigns.distributed`, served by ``python -m repro
  worker``, chaos-tested via :mod:`~repro.campaigns.faults`).
* **Checkpoints** (:mod:`~repro.campaigns.checkpoint`) record finished
  chunks in JSONL shards keyed by spec hash, so killed campaigns resume
  bit-identically.
* **Result store + refinement** (:mod:`~repro.campaigns.store`,
  :mod:`~repro.campaigns.refine`): finished results persist in a
  content-addressed cache keyed by ``(spec hash, version)``, and
  ``run(..., refine=True)`` seeds a spec's shard from a sibling spec's
  (same campaign, different shot count) so "more shots" resumes
  instead of recomputing — the serving substrate of
  :mod:`repro.service` (``python -m repro serve``).

``python -m repro run spec.json`` drives all of this from the command
line.  See ``docs/API.md`` for the full schema.
"""

from repro.campaigns.checkpoint import (CheckpointError, CheckpointStore,
                                        ShardFile)
from repro.campaigns.distributed import (Worker, WorkerCrashed,
                                         WorkQueueError, WorkQueueExecutor,
                                         serve)
from repro.campaigns.executors import (DistributedExecutor, Executor,
                                       InlineExecutor, ProcessPoolExecutor,
                                       default_executor)
from repro.campaigns.refine import (find_refinement_base, seed_refinement,
                                    shots_field)
from repro.campaigns.results import CampaignResult, Provenance, SweepResult
from repro.campaigns.runner import register_campaign, registered_kinds, run
from repro.campaigns.store import ResultStore
from repro.campaigns.specs import (CampaignSpec, DetectionSpec, EndToEndSpec,
                                   MemorySpec, ScalingSpec, ScenarioSpec,
                                   SpecError, StreamingSpec, Sweep,
                                   ThroughputSpec, derive_seed,
                                   spec_from_dict, spec_from_json, spec_hash,
                                   spec_to_dict, spec_to_json)

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "CheckpointError",
    "CheckpointStore",
    "DetectionSpec",
    "DistributedExecutor",
    "EndToEndSpec",
    "Executor",
    "InlineExecutor",
    "MemorySpec",
    "ProcessPoolExecutor",
    "Provenance",
    "ResultStore",
    "ScalingSpec",
    "ScenarioSpec",
    "ShardFile",
    "SpecError",
    "StreamingSpec",
    "Sweep",
    "SweepResult",
    "ThroughputSpec",
    "WorkQueueError",
    "WorkQueueExecutor",
    "Worker",
    "WorkerCrashed",
    "default_executor",
    "serve",
    "derive_seed",
    "find_refinement_base",
    "register_campaign",
    "registered_kinds",
    "run",
    "seed_refinement",
    "shots_field",
    "spec_from_dict",
    "spec_from_json",
    "spec_hash",
    "spec_to_dict",
    "spec_to_json",
]
