"""Streaming detection mode: per-round latency envelope vs the SLO.

Sec. VIII-D's real-time requirement: the anomaly detection unit must
keep up with the code cycle (~1 us), or the syndrome stream backs up
and the rollback window drifts.  This bench runs the online driver
(`repro.streaming`) through the campaign API and publishes its
per-round wall-clock envelope — p50/p99 latency and sustained
rounds/sec — plus the SLO headroom judged by
``repro.hwmodel.StreamSLO``.  The software driver documents the gap to
the paper's dedicated hardware; the *trajectory* (did a change slow
the round loop?) is what the CI comparator guards, with the latency
keys judged lower-is-better under ``--all-metrics``.

Alongside the clocks, the bench re-certifies the offline≡streaming
equivalence invariant on fresh seeds (`streaming_bit_equal` — a flip
off ``true`` is fatal at every comparator setting) and the bounded
memory bar (peak live rounds <= c_win).
"""

import numpy as np
import pytest

from repro import campaigns
from repro.streaming import StreamingTrialDriver, replay_offline

from _common import emit_json, print_table, scale

DISTANCE = 9
P = 2e-3
P_ANO = 0.5
ANOMALY_SIZE = 4
C_WIN = 50
N_TH = 8
CODE_CYCLE_US = 1.0


def _spec(trials: int) -> campaigns.StreamingSpec:
    return campaigns.StreamingSpec(
        distance=DISTANCE, p=P, p_ano=P_ANO, anomaly_size=ANOMALY_SIZE,
        c_win=C_WIN, n_th=N_TH, trials=trials, seed=11,
        code_cycle_us=CODE_CYCLE_US)


def _certify_equivalence(seeds) -> bool:
    """Offline≡streaming on fresh seeds: the bench's bit-equal flag."""
    driver = StreamingTrialDriver(
        DISTANCE, P, P_ANO, ANOMALY_SIZE, onset=2 * C_WIN,
        cycles=6 * C_WIN, c_win=C_WIN, n_th=N_TH)
    free_clock = lambda: 0.0  # noqa: E731 -- certification runs untimed
    for seed in seeds:
        online = driver.run(np.random.default_rng(seed), clock=free_clock)
        offline = replay_offline(driver, np.random.default_rng(seed))
        a, b = online.outcomes(), offline.outcomes()
        try:
            np.testing.assert_equal(a, b)
        except AssertionError:
            return False
    return True


@pytest.mark.benchmark(group="streaming")
def bench_streaming_round_latency(benchmark):
    """Per-round latency percentiles of the online detection driver."""
    trials = max(4, int(8 * scale()))
    spec = _spec(trials)

    result = benchmark.pedantic(campaigns.run, args=(spec,),
                                rounds=1, iterations=1)
    bit_equal = _certify_equivalence(range(8))

    est, counts = result.estimates, result.counts
    print_table(
        f"Streaming round latency (d={DISTANCE}, c_win={C_WIN}, "
        f"{trials} trials, {counts['rounds']} rounds)",
        ["metric", "value"],
        [["p50 round latency (us)", est["p50_round_latency_us"]],
         ["p99 round latency (us)", est["p99_round_latency_us"]],
         ["sustained rounds/sec", est["rounds_per_sec"]],
         [f"SLO headroom (vs {CODE_CYCLE_US} us cycle)",
          est["slo_headroom"]],
         ["peak live rounds", counts["peak_live_rounds"]],
         ["offline = streaming (bit)", bit_equal]])

    emit_json("batch", "streaming_latency", {
        "trials": trials,
        "p50_round_latency_us": est["p50_round_latency_us"],
        "p99_round_latency_us": est["p99_round_latency_us"],
        "rounds_per_sec": est["rounds_per_sec"],
        # slo_headroom is a drift float on purpose: a boolean "SLO met"
        # flag would trip the comparator's fatal certification rule in
        # *both* directions, and meeting the 1 us cycle is the
        # dedicated hardware's job (StreamSLO documents the gap).
        "slo_headroom": est["slo_headroom"],
        "peak_live_rounds": counts["peak_live_rounds"],
        "rounds": counts["rounds"],
        "streaming_bit_equal": bit_equal,
    })

    # Certification bars (the clocks themselves are trajectory-guarded
    # by compare_bench, not asserted here — shared runners are noisy).
    assert bit_equal, "offline≡streaming equivalence broke"
    assert counts["peak_live_rounds"] <= C_WIN
    assert est["p99_round_latency_us"] >= est["p50_round_latency_us"] > 0.0
    assert est["rounds_per_sec"] > 0.0


def smoke() -> None:
    """One tiny streamed campaign (bench_smoke marker)."""
    spec = campaigns.StreamingSpec(
        distance=5, p=2e-3, p_ano=0.5, anomaly_size=2, c_win=15,
        n_th=4, trials=2, seed=7)
    result = campaigns.run(spec)
    assert result.counts["trials"] == 2
    assert result.counts["peak_live_rounds"] <= 15
    assert result.estimates["p99_round_latency_us"] > 0.0
    assert _certify_equivalence(range(2))
