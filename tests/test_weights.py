"""Tests for matching distance models (uniform and anomaly-aware)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.decoding.weights import (
    NORTH,
    SOUTH,
    DistanceModel,
    llr_weight,
    relative_anomalous_weight,
)
from repro.noise import AnomalousRegion


class TestWeights:
    def test_llr_weight_monotone(self):
        assert llr_weight(0.001) > llr_weight(0.01) > llr_weight(0.1)

    def test_llr_weight_of_half_is_zero(self):
        assert llr_weight(0.5) == pytest.approx(0.0)

    def test_llr_rejects_degenerate(self):
        with pytest.raises(ValueError):
            llr_weight(0.0)
        with pytest.raises(ValueError):
            llr_weight(1.0)

    def test_relative_weight_half_is_zero(self):
        assert relative_anomalous_weight(0.01, 0.5) == 0.0

    def test_relative_weight_clipped_above_half(self):
        assert relative_anomalous_weight(0.01, 0.9) == 0.0

    def test_relative_weight_between_zero_and_one(self):
        w = relative_anomalous_weight(0.001, 0.1)
        assert 0.0 < w < 1.0


class TestUniformDistances:
    def test_node_distance_is_manhattan(self):
        model = DistanceModel(9)
        assert model.node_distance((0, 0, 0), (3, 2, 4)) == 9.0

    def test_pairwise_symmetry_and_zero_diagonal(self):
        model = DistanceModel(7)
        nodes = np.array([[0, 1, 2], [3, 4, 5], [1, 0, 6]])
        dist = model.pairwise(nodes)
        assert np.allclose(dist, dist.T)
        assert np.allclose(np.diag(dist), 0.0)

    def test_boundary_prefers_north_when_closer(self):
        model = DistanceModel(9)
        dist, side = model.boundary_distance((0, 1, 4))
        assert dist == 2.0
        assert side == NORTH

    def test_boundary_prefers_south_when_closer(self):
        model = DistanceModel(9)
        dist, side = model.boundary_distance((0, 6, 4))
        assert dist == 2.0  # d-1-i = 8-6
        assert side == SOUTH

    def test_boundary_middle_distance(self):
        model = DistanceModel(9)
        dist, _ = model.boundary_distance((0, 3, 0))
        assert dist == 4.0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(3, 15), st.data())
    def test_triangle_inequality(self, d, data):
        model = DistanceModel(d)
        coords = st.tuples(st.integers(0, 20), st.integers(0, d - 2),
                           st.integers(0, d - 1))
        a, b, c = (data.draw(coords) for _ in range(3))
        ab = model.node_distance(a, b)
        bc = model.node_distance(b, c)
        ac = model.node_distance(a, c)
        assert ac <= ab + bc + 1e-9


class TestRegionDistances:
    def setup_method(self):
        # Region covering node rows/cols 2..5 at all times, weight 0.
        self.region = AnomalousRegion(2, 2, 4)
        self.model = DistanceModel(9, self.region, w_ano=0.0)

    def test_inside_region_distance_zero(self):
        assert self.model.node_distance((0, 2, 2), (0, 5, 5)) == 0.0

    def test_via_region_shortcut(self):
        # (0,0,2) is 2 above the region; (0,7,2) is 2 below: direct 7,
        # via region 2 + 0 + 2 = 4.
        d = self.model.node_distance((0, 0, 2), (0, 7, 2))
        assert d == 4.0

    def test_direct_still_used_when_shorter(self):
        d = self.model.node_distance((0, 0, 0), (0, 0, 1))
        assert d == 1.0

    def test_region_never_increases_distance(self):
        uniform = DistanceModel(9)
        rng = np.random.default_rng(0)
        nodes = np.column_stack([
            rng.integers(0, 10, 30), rng.integers(0, 8, 30),
            rng.integers(0, 9, 30)])
        assert np.all(self.model.pairwise(nodes)
                      <= uniform.pairwise(nodes) + 1e-9)

    def test_boundary_via_region(self):
        # Node at row 7 below region: south = 1, north direct = 8,
        # north via region = dist_box(2) + 0 + (row_lo + 1 = 3) = 5.
        dist, side = self.model.boundary_distance((0, 7, 3))
        assert dist == 1.0 and side == SOUTH
        # Force a node where via-region north beats direct north:
        # node (0, 6, 3): direct north 7, via = 1 + 3 = 4, south = 2.
        dist, side = self.model.boundary_distance((0, 6, 3))
        assert dist == 2.0 and side == SOUTH

    def test_boundary_via_region_wins(self):
        # Narrow lattice where via-region north is the cheapest option:
        # d=21, region rows 2..5, node at row 8: direct north 9,
        # south 12, via-region north = (8-5) + 3 = 6.
        region = AnomalousRegion(2, 2, 4)
        model = DistanceModel(21, region)
        dist, side = model.boundary_distance((0, 8, 3))
        assert dist == 6.0
        assert side == NORTH

    def test_time_bounds_respected(self):
        region = AnomalousRegion(2, 2, 4, t_lo=5, t_hi=10)
        model = DistanceModel(9, region)
        # At t=0 the region is 5 time-steps away; via-region path for the
        # same spatial shortcut costs 2 + 5 + 5 + 2 = 14 > direct 7.
        assert model.node_distance((0, 0, 2), (0, 7, 2)) == 7.0
        # At t=7 the region is active: shortcut costs 4.
        assert model.node_distance((7, 0, 2), (7, 7, 2)) == 4.0

    def test_nonzero_anomalous_weight_charges_interior(self):
        model = DistanceModel(9, self.region, w_ano=0.5)
        # Interior span of 3 rows costs 0.5 each: 2 + 1.5 + 2 = 5.5.
        d = model.node_distance((0, 0, 2), (0, 7, 2))
        assert d == pytest.approx(5.5)

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_scalar_matches_vectorized(self, data):
        coords = st.tuples(st.integers(0, 12), st.integers(0, 7),
                           st.integers(0, 8))
        a = data.draw(coords)
        b = data.draw(coords)
        arr = np.array([a, b])
        assert self.model.node_distance(a, b) == pytest.approx(
            float(self.model.pairwise(arr)[0, 1]))
