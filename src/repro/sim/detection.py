"""Anomaly-detection experiments (paper Fig. 7, Sec. VII-B).

Streams realistic syndrome activity (normal period, then an MBBE onset)
through the :class:`AnomalyDetectionUnit` and measures:

* false-positive rate during the normal period;
* detection (true-positive) rate and latency after the onset;
* error of the estimated anomaly position.

Also provides the analytic window-size bound used to seed the empirical
"required window size" search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.special import erfinv

from repro.core.statistics import (
    SyndromeStatistics,
    expected_activity_rate,
)


@dataclass(frozen=True)
class DetectionTrialResult:
    """Outcome of one streamed trial."""

    false_positive: bool
    detected: bool
    latency_cycles: Optional[int]
    position_error: Optional[float]


@dataclass(frozen=True)
class DetectionPerformance:
    """Aggregate over trials."""

    trials: int
    false_positives: int
    detections: int
    mean_latency: float
    mean_position_error: float

    @property
    def false_positive_rate(self) -> float:
        return self.false_positives / self.trials

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.detections / self.trials


def calibrated_statistics(p: float) -> SyndromeStatistics:
    """Bulk-node activity statistics for normal qubits (pre-calibration)."""
    return SyndromeStatistics.from_activity_rate(expected_activity_rate(p))


def run_detection_trials(
    distance: int,
    p: float,
    p_ano: float,
    anomaly_size: int,
    c_win: int,
    n_th: int = 20,
    alpha: float = 0.01,
    trials: int = 20,
    normal_cycles: Optional[int] = None,
    post_cycles: Optional[int] = None,
    seed: Optional[int] = None,
    workers: int = 0,
    packing: str = "bits",
) -> DetectionPerformance:
    """Stream trials through the detection unit and aggregate outcomes.

    This is now a thin shim over the unified campaign API — it builds a
    :class:`repro.campaigns.DetectionSpec` and calls
    :func:`repro.campaigns.run`, so its results are bit-identical per
    ``(seed, batch_size)`` to the pre-redesign ``BatchShotRunner`` path
    and to a directly run spec.  Prefer the campaign API for new code
    (sweeps, executors, checkpoint/resume, provenance).

    Each trial: ``normal_cycles`` of anomaly-free operation (any flag here
    is a false positive), then an MBBE appears at a random position and
    runs for ``post_cycles`` (no flag here is a miss).  The staged batch
    kernel (one windowed-count pass per chunk, bit-packed
    sampling/extraction by default — see ``packing``) is the only
    engine: ``workers = 0`` (default) runs it in-process over
    whole-request chunks (``batch_size = trials``, shrunk by
    :func:`repro.sim.batch.default_chunk_shots` when the chunk's
    activity tensors would not fit in memory), ``> 1`` fans batches over
    a process pool.  The retired per-cycle reference loop lives in
    ``tests/reference_engines.py``, reachable only from the equivalence
    suite.
    """
    from repro import campaigns
    if seed is None:
        # reprolint: disable=RL001 -- seed=None is the legacy API's
        # explicit opt-out; the drawn seed lands in the spec so the
        # run is still replayable from its provenance block
        seed = int(np.random.default_rng().integers(2 ** 63))
    spec = campaigns.DetectionSpec(
        distance=distance, p=p, p_ano=p_ano,
        anomaly_size=anomaly_size, c_win=c_win, n_th=n_th,
        alpha=alpha, trials=trials, normal_cycles=normal_cycles,
        post_cycles=post_cycles, seed=seed, packing=packing)
    executor = campaigns.default_executor(workers)
    return campaigns.run(spec, executor=executor).detail


def analytic_required_window(
    p: float,
    p_ano: float,
    alpha: float = 0.01,
    beta: float = 0.01,
) -> int:
    """Smallest window separating normal and anomalous counters.

    Requires the anomalous counter mean to clear the Eq. (3) threshold
    with miss probability ``beta``:

        c_win (mu_a - mu) >= sqrt(2 c_win) (sigma erfinv(1-alpha)
                                            + sigma_a erfinv(1-beta))

    Solved for ``c_win``.  Diverges as ``p_ano -> p`` (undetectable).
    """
    mu = expected_activity_rate(p)
    mu_a = expected_activity_rate(min(0.5, p_ano))
    if mu_a <= mu:
        raise ValueError("anomalous rate must exceed the normal rate")
    sigma = math.sqrt(mu * (1 - mu))
    sigma_a = math.sqrt(mu_a * (1 - mu_a))
    numerator = math.sqrt(2.0) * (sigma * erfinv(1 - alpha)
                                  + sigma_a * erfinv(1 - beta))
    return max(1, math.ceil((numerator / (mu_a - mu)) ** 2))


def empirical_required_window(
    distance: int,
    p: float,
    p_ano: float,
    anomaly_size: int,
    n_th: int = 20,
    alpha: float = 0.01,
    target_error: float = 0.01,
    trials: int = 25,
    seed: Optional[int] = None,
    growth: float = 1.5,
    max_window: int = 4096,
    workers: int = 0,
) -> tuple[int, DetectionPerformance]:
    """Grow the window until both error rates fall below ``target_error``.

    With ``trials`` shots the verifiable resolution is ``1/trials``; the
    paper's 1 % criterion is reproduced in shape (monotone decrease with
    the rate ratio) at reduced statistical depth.
    """
    c_win = analytic_required_window(p, p_ano, alpha, target_error)
    while True:
        perf = run_detection_trials(
            distance, p, p_ano, anomaly_size, c_win, n_th, alpha,
            trials=trials, seed=seed, workers=workers)
        if (perf.false_positive_rate <= max(target_error, 1.0 / trials)
                and perf.miss_rate <= max(target_error, 1.0 / trials)):
            return c_win, perf
        if c_win >= max_window:
            return c_win, perf
        c_win = min(max_window, max(c_win + 1, int(c_win * growth)))
