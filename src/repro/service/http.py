"""The stdlib HTTP front end of the campaign service.

Endpoints (all JSON; full schema in docs/SERVICE.md):

=======  ==================================  ===============================
method   path                                meaning
=======  ==================================  ===============================
POST     ``/campaigns``                      submit a spec (the request body
                                             is the spec JSON); 200 = served
                                             from the result cache, 202 =
                                             scheduled or coalesced, 400 =
                                             malformed spec
GET      ``/campaigns/<spec_hash>``          result / status; 200 complete,
                                             202 in flight, 404 unknown,
                                             500 failed
GET      ``/campaigns/<spec_hash>/partial``  streamed Wilson-interval
                                             estimate from the live
                                             checkpoint shard
GET      ``/healthz``                        liveness + counters
=======  ==================================  ===============================

Built on ``http.server.ThreadingHTTPServer`` — no dependencies beyond
the stdlib, one thread per connection, all shared state behind the
scheduler's locks and the stores' atomic-rename discipline.
"""

from __future__ import annotations

import copy
import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Optional, Union

from repro.campaigns.executors import Executor
from repro.campaigns.specs import SpecError, Sweep, spec_from_json, spec_hash
from repro.service.scheduler import Scheduler
from repro.service.store import ServiceStore, read_partial

#: Request header naming the submitting tenant (fairness unit).
TENANT_HEADER = "X-Repro-Tenant"
DEFAULT_TENANT = "public"


def _default_executor_factory() -> Callable[[], Executor]:
    from repro import config
    from repro.campaigns.cli import parse_executor
    value = config.service_executor()
    parse_executor(value)  # fail fast on a bad REPRO_SERVICE_EXECUTOR
    return lambda: parse_executor(value)


class ServiceApp:
    """The server's state and request logic, HTTP-free and testable.

    Every handler method returns ``(status_code, document)``; the
    :class:`_Handler` below only routes, reads bodies, and writes JSON.
    """

    def __init__(self, store_dir: Union[str, Path],
                 executor_factory: Optional[Callable[[], Executor]] = None,
                 threads: Optional[int] = None,
                 version: Optional[str] = None,
                 refine: bool = True,
                 verbose: bool = False):
        import repro
        from repro import config
        if executor_factory is None:
            executor_factory = _default_executor_factory()
        if threads is None:
            threads = config.service_threads()
        self.version = version if version is not None else repro.__version__
        self.verbose = verbose
        self.store = ServiceStore(store_dir, version=self.version)
        self.scheduler = Scheduler(self.store, executor_factory,
                                   threads=threads, refine=refine)

    def close(self) -> None:
        self.scheduler.shutdown()

    # ------------------------------------------------------------------
    def submit(self, body: bytes, tenant: str) -> tuple[int, dict]:
        """``POST /campaigns``: cache read, coalesce, or schedule."""
        try:
            spec = spec_from_json(body.decode("utf-8", errors="replace"))
        except SpecError as exc:
            return 400, {"error": str(exc)}
        if isinstance(spec, Sweep):
            return 400, {"error": "sweeps are a client-side loop: submit "
                                  "each grid point as its own campaign"}
        h = spec_hash(spec)
        record = self.store.results.get_hash(h)
        if record is not None:
            return 200, self._complete_doc(h, record, cache_hit=True)
        job, coalesced = self.scheduler.submit(spec, tenant)
        return 202, {
            **job.snapshot(),
            "cache_hit": False,
            "coalesced": coalesced,
            "links": {"status": f"/campaigns/{h}",
                      "partial": f"/campaigns/{h}/partial"},
        }

    def status(self, h: str) -> tuple[int, dict]:
        """``GET /campaigns/<spec_hash>``: the result or job state."""
        record = self.store.results.get_hash(h)
        if record is not None:
            return 200, self._complete_doc(h, record, cache_hit=True)
        job = self.scheduler.job(h)
        if job is None:
            return 404, {"error": f"unknown campaign {h!r}",
                         "spec_hash": h}
        if job.state == "failed":
            return 500, {**job.snapshot(), "error": job.error}
        return 202, job.snapshot()

    def partial(self, h: str) -> tuple[int, dict]:
        """``GET /campaigns/<spec_hash>/partial``: the live estimate."""
        partial = read_partial(self.store.shard_path(h))
        job = self.scheduler.job(h)
        complete = self.store.results.get_hash(h) is not None
        if partial is not None:
            if complete:
                status = "complete"
            elif job is not None:
                status = job.state
            else:
                # A shard with no job and no result: a previous server
                # was interrupted mid-campaign; the next submission
                # resumes exactly here.
                status = "interrupted"
            return 200, {"status": status, "spec_hash": h, **partial}
        if complete:
            # Complete but shardless: an analytic/streaming kind, or a
            # cache populated elsewhere.  Nothing to stream.
            return 200, {"status": "complete", "spec_hash": h,
                         "shots_done": None}
        if job is not None:
            return 202, job.snapshot()
        return 404, {"error": f"no partial state for campaign {h!r}",
                     "spec_hash": h}

    def health(self) -> tuple[int, dict]:
        """``GET /healthz``: liveness, version, counters."""
        return 200, {"status": "ok", "version": self.version,
                     "store": str(self.store.root),
                     **self.scheduler.stats()}

    # ------------------------------------------------------------------
    def _complete_doc(self, h: str, record: dict,
                      cache_hit: bool) -> dict:
        result = copy.deepcopy(record["result"])
        provenance = result.get("provenance")
        if isinstance(provenance, dict):
            provenance["cache_hit"] = cache_hit
        return {"status": "complete", "spec_hash": h,
                "version": record.get("version"),
                "cache_hit": cache_hit, "result": result}


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> ServiceApp:
        return self.server.app  # type: ignore[attr-defined]

    def _send(self, status: int, doc: dict) -> None:
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/healthz":
            self._send(*self.app.health())
            return
        parts = [p for p in path.split("/") if p]
        if len(parts) == 2 and parts[0] == "campaigns":
            self._send(*self.app.status(parts[1]))
            return
        if len(parts) == 3 and parts[0] == "campaigns" \
                and parts[2] == "partial":
            self._send(*self.app.partial(parts[1]))
            return
        self._send(404, {"error": f"no such route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/campaigns":
            self._send(404, {"error": f"no such route {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length <= 0:
            self._send(400, {"error": "request body must be the spec JSON"})
            return
        body = self.rfile.read(length)
        tenant = self.headers.get(TENANT_HEADER, DEFAULT_TENANT).strip() \
            or DEFAULT_TENANT
        self._send(*self.app.submit(body, tenant))

    def log_message(self, format: str, *args: object) -> None:
        if self.app.verbose:
            super().log_message(format, *args)


class ServiceHTTPServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer carrying its :class:`ServiceApp`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], app: ServiceApp):
        super().__init__(address, _Handler)
        self.app = app


def make_server(app: ServiceApp, host: str = "127.0.0.1",
                port: int = 0) -> ServiceHTTPServer:
    """Bind the service (``port=0`` picks a free port, for tests)."""
    return ServiceHTTPServer((host, port), app)


def serve(store_dir: Union[str, Path], host: str, port: int,
          executor_factory: Optional[Callable[[], Executor]] = None,
          threads: Optional[int] = None, verbose: bool = True) -> None:
    """Run the campaign server until interrupted (the CLI entry point)."""
    import sys
    app = ServiceApp(store_dir, executor_factory=executor_factory,
                     threads=threads, verbose=verbose)
    server = make_server(app, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro service v{app.version} on http://{bound_host}:{bound_port} "
          f"(store: {app.store.root})", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        app.close()
