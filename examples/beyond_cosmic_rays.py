"""Beyond cosmic rays: Q3DE on trapped-ion burst errors (paper Sec. IX).

Ions and neutral atoms do not sit on a substrate, so cosmic rays barely
touch them -- but atom loss, leakage out of the qubit space, and
calibration drift produce the same signature: a region whose error rate
jumps until a slow repair completes.  Q3DE's detection works unchanged;
the *reaction* differs (the paper: move the logical qubit so the trap can
be reloaded/re-calibrated, instead of expanding in place).

This example samples a multi-source burst timeline for an ion-trap
lattice, routes each event through the recommended reaction policy on a
qubit plane, and shows the detector catching a leakage-style burst.

Run:  python examples/beyond_cosmic_rays.py
"""

import numpy as np

from repro.arch.qubit_plane import QubitPlane
from repro.core.policy import ReactionPolicy, ReactionPolicyEngine
from repro.noise import PhenomenologicalNoise
from repro.noise.leakage import BurstSource, ion_trap_processes
from repro.core.anomaly import AnomalyDetectionUnit
from repro.decoding.graph import SyndromeLattice
from repro.sim.detection import calibrated_statistics

DISTANCE = 13
P = 1e-4  # ion gates are cleaner but slower
HOURS = 2.0
CYCLE_S = 1e-4  # ~100 us cycles for ions


def sample_timeline():
    rows, cols = DISTANCE - 1, DISTANCE
    total_cycles = int(HOURS * 3600 / CYCLE_S)
    print(f"Ion-trap lattice {rows}x{cols}, {HOURS} h "
          f"({total_cycles:.1e} cycles of {CYCLE_S * 1e6:.0f} us)\n")
    events = []
    for proc in ion_trap_processes(rows, cols, np.random.default_rng(11)):
        events.extend(proc.sample(total_cycles))
    events.sort(key=lambda e: e.cycle)
    return events


def react_to_events(events):
    plane = QubitPlane(11, 11)
    print(f"{'cycle':>12}  {'source':<18}  {'size':>4}  "
          f"{'policy':<9}  outcome")
    rng = np.random.default_rng(3)
    for event in events[:12]:
        policy = event.recommended_policy
        engine = ReactionPolicyEngine(plane, policy)
        qubit = int(rng.integers(0, plane.num_logical))
        slot = event.cycle // DISTANCE
        plane.strike(*plane.logical_positions[qubit],
                     until_slot=slot + event.duration_cycles // DISTANCE)
        out = engine.react(qubit, slot, event.duration_cycles // DISTANCE)
        what = ("moved to %s" % (out.new_position,)
                if policy is ReactionPolicy.RELOCATE and out.succeeded
                else "expanded" if out.succeeded else "blocked")
        print(f"{event.cycle:>12}  {event.source.value:<18}  "
              f"{event.size:>4}  {policy.value:<9}  {what}")
    if len(events) > 12:
        print(f"  ... and {len(events) - 12} more events")


def detect_a_leakage_burst():
    print("\nDetecting a leakage burst from syndrome statistics alone:")
    region_size = 1  # single-site burst (atom loss / leakage)
    from repro.noise import AnomalousRegion
    onset = 400
    region = AnomalousRegion(5, 6, region_size, t_lo=onset)
    noise = PhenomenologicalNoise(DISTANCE, P, p_ano=0.5, region=region)
    v, h, m = noise.sample(1500, np.random.default_rng(4))
    stream = SyndromeLattice(DISTANCE).per_cycle_activity(v, h, m)
    # A single leaked site elevates very few counters: small n_th.
    unit = AnomalyDetectionUnit(
        (DISTANCE - 1, DISTANCE), calibrated_statistics(P),
        c_win=300, n_th=2, alpha=1e-5)
    for t in range(len(stream)):
        evt = unit.observe(stream[t])
        if evt is not None and evt.cycle >= onset:
            print(f"  detected at cycle {evt.cycle} "
                  f"(onset {onset}, latency {evt.cycle - onset}), "
                  f"estimated site ({evt.row}, {evt.col}) vs true (5, 6)")
            break
    else:
        print("  not detected (single-site bursts are the hardest case)")


def main():
    events = sample_timeline()
    counts = {}
    for e in events:
        counts[e.source] = counts.get(e.source, 0) + 1
    for source in BurstSource:
        if source in counts:
            print(f"  {source.value:<20} {counts[source]} events")
    print()
    react_to_events(events)
    detect_a_leakage_burst()


if __name__ == "__main__":
    main()
