"""Integration: scheduler + reaction policies sharing one qubit plane.

Exercises the interaction the throughput study depends on: reactions
consume plane space that the scheduler then has to route around, and
relocation changes where subsequent lattice surgery terminates.
"""

from collections import deque

import numpy as np

from repro.arch.isa import Instruction, InstructionKind
from repro.arch.qubit_plane import BlockState, QubitPlane
from repro.arch.scheduler import GreedyScheduler
from repro.core.policy import ReactionPolicy, ReactionPolicyEngine


def zz(a, b, reg=0):
    return Instruction(InstructionKind.MEAS_ZZ, (a, b), register=reg)


class TestExpandThenSchedule:
    def test_surgery_routes_around_expansion(self):
        plane = QubitPlane(11, 11)
        engine = ReactionPolicyEngine(plane, ReactionPolicy.EXPAND)
        # Expand qubit 6 (an interior qubit at (3, 3)).
        assert engine.react(6, slot=0, duration_slots=50).succeeded
        sched = GreedyScheduler(plane)
        # Its neighbours can still reach each other around the 2x2 blob.
        assert sched.try_commit(zz(0, 12), slot=0)

    def test_op_on_expanded_qubit_spans_all_its_blocks(self):
        plane = QubitPlane(11, 11)
        ReactionPolicyEngine(plane, ReactionPolicy.EXPAND).react(
            6, slot=0, duration_slots=50)
        sched = GreedyScheduler(plane)
        assert sched.try_commit(zz(6, 7), slot=0)
        op = sched.executing[0]
        for cell in plane.expansions[6]:
            assert cell in op.cells
        # And the doubled-distance latency applies.
        assert op.finish_slot == 2

    def test_expansion_blocked_by_busy_neighbors_defers(self):
        plane = QubitPlane(11, 11)
        sched = GreedyScheduler(plane)
        # Saturate the area around qubit 0 with running surgery.
        assert sched.try_commit(zz(0, 1), slot=0)
        engine = ReactionPolicyEngine(plane, ReactionPolicy.EXPAND)
        out = engine.react(0, slot=0, duration_slots=50)
        # The 2x2 group still forms (other neighbours are free), but
        # never out of blocks the surgery path reserved.
        if out.succeeded:
            surgery_cells = set(sched.executing[0].cells)
            assert not surgery_cells & set(plane.expansions[0])


class TestRelocateThenSchedule:
    def test_surgery_targets_new_home(self):
        plane = QubitPlane(11, 11)
        engine = ReactionPolicyEngine(plane, ReactionPolicy.RELOCATE)
        plane.strike(1, 1, until_slot=100)
        out = engine.react(0, slot=0, duration_slots=100)
        assert out.succeeded
        sched = GreedyScheduler(plane)
        # After the move completes (one slot), surgery works from the
        # new position.
        assert sched.try_commit(zz(0, 1), slot=1)
        op = sched.executing[0]
        assert out.new_position in op.cells
        assert (1, 1) not in op.cells

    def test_vacated_anomalous_block_not_used_for_routing(self):
        plane = QubitPlane(11, 11)
        engine = ReactionPolicyEngine(plane, ReactionPolicy.RELOCATE)
        plane.strike(1, 1, until_slot=100)
        engine.react(0, slot=0, duration_slots=100)
        sched = GreedyScheduler(plane)
        for _ in range(5):
            queue = deque([zz(2, 7, reg=1)])
            sched.step(queue, slot=2)
        for op in sched.executing:
            assert (1, 1) not in op.cells


class TestMixedCampaign:
    def test_random_strikes_never_corrupt_plane_invariants(self):
        """Property-style: arbitrary strike/react/schedule interleavings
        keep exactly 25 logical qubits, each at a unique position."""
        rng = np.random.default_rng(5)
        plane = QubitPlane(11, 11)
        engines = {
            ReactionPolicy.EXPAND: ReactionPolicyEngine(
                plane, ReactionPolicy.EXPAND),
            ReactionPolicy.RELOCATE: ReactionPolicyEngine(
                plane, ReactionPolicy.RELOCATE),
        }
        sched = GreedyScheduler(plane)
        queue = deque(zz(int(a), int(b), reg=i) for i, (a, b) in enumerate(
            rng.choice(25, size=(30, 2), replace=True)) if a != b)
        for slot in range(40):
            if rng.random() < 0.3:
                r = int(rng.integers(0, 11))
                c = int(rng.integers(0, 11))
                blk = plane.strike(r, c, until_slot=slot + 20)
                if (blk.state is BlockState.LOGICAL
                        and blk.logical_id is not None):
                    policy = (ReactionPolicy.EXPAND if rng.random() < 0.5
                              else ReactionPolicy.RELOCATE)
                    engines[policy].react(blk.logical_id, slot, 20)
            plane.expire_anomalies(slot)
            sched.step(queue, slot)
            positions = list(plane.logical_positions.values())
            assert len(positions) == len(set(positions)) == 25
            for qubit, (r, c) in plane.logical_positions.items():
                assert plane.block(r, c).logical_id == qubit
                assert plane.block(r, c).state is BlockState.LOGICAL
