"""Tests for the qubit plane block grid."""

import pytest

from repro.arch.qubit_plane import BlockState, QubitPlane


class TestAllocation:
    def test_paper_plane_hosts_25_logical_qubits(self):
        plane = QubitPlane(11, 11)
        assert plane.num_logical == 25

    def test_logical_blocks_on_odd_indices(self):
        plane = QubitPlane(7, 7)
        for qubit, (r, c) in plane.logical_positions.items():
            assert r % 2 == 1 and c % 2 == 1
            assert plane.block(r, c).logical_id == qubit

    def test_vacant_between_qubits(self):
        plane = QubitPlane(5, 5)
        assert plane.block(1, 2).state is BlockState.VACANT
        assert plane.block(2, 1).state is BlockState.VACANT

    def test_empty_plane_rejected(self):
        with pytest.raises(ValueError):
            QubitPlane(0, 3)


class TestAnomalies:
    def test_vacant_strike_becomes_anomalous(self):
        plane = QubitPlane(5, 5)
        plane.strike(0, 0, until_slot=10)
        assert plane.block(0, 0).state is BlockState.ANOMALOUS
        assert not plane.routable(0, 0, slot=5)

    def test_anomaly_expires(self):
        plane = QubitPlane(5, 5)
        plane.strike(0, 0, until_slot=10)
        recovered = plane.expire_anomalies(10)
        assert (0, 0) in recovered
        assert plane.routable(0, 0, slot=10)

    def test_logical_strike_keeps_logical_state(self):
        plane = QubitPlane(5, 5)
        plane.strike(1, 1, until_slot=10)
        assert plane.block(1, 1).state is BlockState.LOGICAL
        assert plane.is_anomalous(1, 1, slot=5)

    def test_repeat_strike_extends(self):
        plane = QubitPlane(5, 5)
        plane.strike(0, 0, until_slot=10)
        plane.strike(0, 0, until_slot=30)
        plane.expire_anomalies(10)
        assert plane.block(0, 0).state is BlockState.ANOMALOUS


class TestExpansion:
    def test_expand_absorbs_three_blocks(self):
        plane = QubitPlane(11, 11)
        assert plane.expand_logical(0, slot=0)  # qubit 0 at (1, 1)
        absorbed = plane.expansions[0]
        assert len(absorbed) == 3
        for r, c in absorbed:
            assert plane.block(r, c).state is BlockState.EXPANSION
            assert plane.block(r, c).logical_id == 0

    def test_expanded_blocks_not_routable(self):
        plane = QubitPlane(11, 11)
        plane.expand_logical(0, slot=0)
        for r, c in plane.expansions[0]:
            assert not plane.routable(r, c, slot=0)

    def test_shrink_restores_vacancy(self):
        plane = QubitPlane(11, 11)
        plane.expand_logical(0, slot=0)
        cells = list(plane.expansions[0])
        plane.shrink_logical(0)
        assert not plane.is_expanded(0)
        for r, c in cells:
            assert plane.block(r, c).state is BlockState.VACANT
            assert plane.block(r, c).logical_id is None

    def test_expand_idempotent(self):
        plane = QubitPlane(11, 11)
        assert plane.expand_logical(0, slot=0)
        first = list(plane.expansions[0])
        assert plane.expand_logical(0, slot=1)
        assert plane.expansions[0] == first

    def test_expand_fails_with_no_vacancy(self):
        plane = QubitPlane(11, 11)
        r, c = plane.logical_positions[0]
        for rr in range(plane.rows):
            for cc in range(plane.cols):
                if plane.block(rr, cc).state is BlockState.VACANT:
                    plane.block(rr, cc).busy_until = 100
        assert not plane.expand_logical(0, slot=0)


class TestReservation:
    def test_reserved_blocks_not_routable(self):
        plane = QubitPlane(5, 5)
        plane.reserve([(0, 0), (0, 1)], until_slot=5)
        assert not plane.routable(0, 0, slot=4)
        assert plane.routable(0, 0, slot=5)

    def test_qubit_free_tracks_reservation(self):
        plane = QubitPlane(5, 5)
        pos = plane.logical_positions[0]
        plane.reserve([pos], until_slot=3)
        assert not plane.qubit_free(0, slot=2)
        assert plane.qubit_free(0, slot=3)

    def test_qubit_free_includes_expansion_blocks(self):
        plane = QubitPlane(11, 11)
        plane.expand_logical(0, slot=0)
        cell = plane.expansions[0][0]
        plane.reserve([cell], until_slot=5)
        assert not plane.qubit_free(0, slot=2)
