"""First-order analysis of MBBE impact (paper Sec. VI-A, Fig. 6b, Eq. 4).

Counts the minimum number of *normal* edges that must flip to induce a
logical error:

* Case 1 (no anomaly):            ``floor(d/2) + 1``
* Case 2 (anomaly, naive decode): ``floor(d/2) + 1 - d_ano``
* Case 3 (anomaly, informed):     ``floor((d - d_ano)/2) + 1``

so an MBBE effectively reduces the code distance by ``2 d_ano`` without
re-execution and by ``d_ano`` with it.  ``effective_distance_reduction``
implements Eq. (4), estimating the reduction from measured logical error
rates.
"""

from __future__ import annotations

import math


def min_normal_flips(d: int, d_ano: int = 0, informed: bool = False) -> int:
    """Minimum normal-edge flips for a logical error (Fig. 6b cases)."""
    if d < 2:
        raise ValueError("distance must be >= 2")
    if d_ano < 0:
        raise ValueError("anomaly size must be non-negative")
    if d_ano == 0:
        return d // 2 + 1
    if informed:
        return max(1, (d - d_ano) // 2 + 1)
    return max(1, d // 2 + 1 - d_ano)


def predicted_reduction(d_ano: int, informed: bool) -> int:
    """Asymptotic code-distance reduction: d_ano informed, 2 d_ano not."""
    return d_ano if informed else 2 * d_ano


def effective_distance_reduction(
    p_l_ano: float,
    p_l: float,
    p_l_minus2: float,
) -> float:
    """Eq. (4): reduction estimated from measured logical error rates.

    ``p_l`` and ``p_l_minus2`` are the MBBE-free rates at distances ``d``
    and ``d - 2``; their ratio calibrates how much one unit of distance is
    worth, and the anomalous-to-normal ratio is expressed in those units::

        d - d_eff = ln(p_L_ano / p_L) / (0.5 * ln(p_L(d-2) / p_L(d)))
    """
    if min(p_l_ano, p_l, p_l_minus2) <= 0.0:
        raise ValueError("rates must be positive")
    denom = 0.5 * math.log(p_l_minus2 / p_l)
    if denom == 0.0:
        raise ValueError("p_l and p_l_minus2 must differ")
    return math.log(p_l_ano / p_l) / denom


def reduction_standard_error(
    p_l_ano: float, se_ano: float,
    p_l: float, se: float,
    p_l_minus2: float, se_minus2: float,
) -> float:
    """First-order error propagation for Eq. (4).

    Used by the Fig. 8 bench to apply the paper's filter (only plot
    points whose standard error is below four).
    """
    if min(p_l_ano, p_l, p_l_minus2) <= 0.0:
        raise ValueError("rates must be positive")
    denom = 0.5 * math.log(p_l_minus2 / p_l)
    value = math.log(p_l_ano / p_l) / denom
    # d(log x) = dx / x; combine numerator and denominator contributions.
    num_var = (se_ano / p_l_ano) ** 2 + (se / p_l) ** 2
    den_var = ((se_minus2 / p_l_minus2) ** 2 + (se / p_l) ** 2) * 0.25
    rel_var = num_var / math.log(p_l_ano / p_l) ** 2 if p_l_ano != p_l else 0.0
    rel_var += den_var / denom ** 2
    return abs(value) * math.sqrt(rel_var)
