"""Ring-buffered sliding-window counter for streamed syndrome rounds.

The offline kernels scan a whole campaign's activity tensor with int32
cumulative sums (:func:`repro.sim.batch._windowed_over`).  Online, the
stream is unbounded, so the window must be *bounded*: this module keeps
exactly the last ``c_win`` rounds in a ring buffer plus one running
per-node count updated add-newest / subtract-oldest.  Both computations
are plain integer arithmetic over the same 0/1 layers, so after every
push the live counts equal the offline windowed sums **bit for bit** —
the invariant the offline≡streaming equivalence suite certifies.

Arrays route through the :mod:`repro.sim.backend` seam (this module is
registered for reprolint's RL002 backend-purity rule), so the window
runs unchanged on the CuPy backend.
"""

from __future__ import annotations

from typing import Any

from repro.sim import backend


class RoundWindow:
    """The last ``c_win`` rounds of a node-activity stream, with counts.

    Args:
        c_win: window length in code cycles (the detection unit's
            ``c_win`` knob).
        shape: spatial shape of one activity layer — ``(d - 1, d)`` for
            the Z-lattice node grid.

    Memory is bounded by construction: one ``(c_win,) + shape`` int32
    ring plus one ``shape`` count array, independent of how many rounds
    stream through.  :attr:`peak_live_rounds` records the most rounds
    ever live at once (always ``<= c_win``), which the bounded-memory
    tests assert on.
    """

    def __init__(self, c_win: int, shape: tuple[int, int]):
        if c_win < 1:
            raise ValueError("c_win must be >= 1")
        xp = backend.xp
        self.c_win = c_win
        self.shape = tuple(shape)
        self._ring = xp.zeros((c_win,) + self.shape, dtype=xp.int32)
        #: Running per-node count over the live window (int32, exact).
        self.counts = xp.zeros(self.shape, dtype=xp.int32)
        self._next = 0
        self.rounds = 0
        self.peak_live_rounds = 0

    @property
    def full(self) -> bool:
        """True once ``c_win`` rounds have been ingested.

        The detection unit stays silent until its window fills — the
        same semantics as the offline scan, whose windowed index ``k``
        only exists for cycles ``t >= c_win - 1``.
        """
        return self.rounds >= self.c_win

    @property
    def live_rounds(self) -> int:
        """Rounds currently held (``<= c_win`` by construction)."""
        return min(self.rounds, self.c_win)

    def push(self, activity: Any) -> bool:
        """Ingest one round's 0/1 activity layer; returns :attr:`full`.

        Add the newest layer, subtract the layer falling out of the
        window (zeros until the ring first wraps): after the push,
        ``counts`` is the exact integer sum of the last
        ``min(rounds, c_win)`` layers — equal to the offline cumsum
        window ending at this round.
        """
        xp = backend.get_array_module(self.counts)
        layer = xp.asarray(activity, dtype=xp.int32)
        if layer.shape != self.shape:
            raise ValueError(
                f"activity layer shape {layer.shape} != {self.shape}")
        self.counts += layer
        self.counts -= self._ring[self._next]
        self._ring[self._next] = layer
        self._next = (self._next + 1) % self.c_win
        self.rounds += 1
        if self.live_rounds > self.peak_live_rounds:
            self.peak_live_rounds = self.live_rounds
        return self.full

    def over(self, v_th: float) -> Any:
        """Above-threshold node map of the live window (bool layer)."""
        return self.counts > v_th

    def n_over(self, v_th: float) -> int:
        """Number of above-threshold nodes in the live window."""
        return int((self.counts > v_th).sum())
