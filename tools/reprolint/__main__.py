"""Entry point for ``python -m reprolint``."""

import sys

from reprolint.cli import main

sys.exit(main())
