"""Chunk-granular checkpoint/resume: bit-equality and shard rejection."""

import json

import numpy as np
import pytest

from repro import campaigns
from repro.campaigns.checkpoint import CheckpointError, CheckpointStore


def _memory_spec(**overrides):
    kwargs = dict(distance=5, p=2e-2, samples=96, seed=17, batch_size=16)
    kwargs.update(overrides)
    return campaigns.MemorySpec(**kwargs)


def _shard_path(tmp_path, spec):
    return tmp_path / f"{campaigns.spec_hash(spec)}.jsonl"


class StopAfter(campaigns.InlineExecutor):
    """An executor that dies after ``limit`` chunks (kill simulation)."""

    def __init__(self, limit: int, whole_request: bool = True):
        super().__init__(whole_request=whole_request)
        self.limit = limit

    def run_chunks(self, kernel, packing, tasks):
        stream = super().run_chunks(kernel, packing, tasks)
        for count, item in enumerate(stream):
            if count >= self.limit:
                raise KeyboardInterrupt("campaign killed mid-sweep")
            yield item


class TestResumeBitEquality:
    def test_checkpointed_equals_straight(self, tmp_path):
        spec = _memory_spec()
        straight = campaigns.run(spec)
        checked = campaigns.run(spec, checkpoint=tmp_path)
        assert checked.counts == straight.counts
        assert checked.estimates == straight.estimates

    def test_kill_mid_sweep_then_resume_is_bit_identical(self, tmp_path):
        spec = _memory_spec()  # 96 shots / 16 per chunk = 6 chunks
        straight = campaigns.run(spec)
        with pytest.raises(KeyboardInterrupt):
            campaigns.run(spec, executor=StopAfter(2),
                          checkpoint=tmp_path)
        # Two chunks survived the kill ...
        shard = CheckpointStore(tmp_path).shard(spec)
        assert sorted(shard.load()) == [0, 1]
        # ... and the resumed campaign completes bit-identically.
        resumed = campaigns.run(spec, checkpoint=tmp_path)
        assert resumed.provenance.resumed_chunks == 2
        assert resumed.provenance.chunks == 6
        assert resumed.counts["failures"] == straight.counts["failures"]
        assert resumed.estimates == straight.estimates

    def test_resume_float_outcomes_with_nan(self, tmp_path):
        # Detection outcomes are float64 with NaN position errors on
        # misses: the harshest round-trip for the JSONL shard.
        spec = campaigns.DetectionSpec(distance=5, p=5e-3, p_ano=0.4,
                                       anomaly_size=2, c_win=30, n_th=2,
                                       trials=9, seed=23, batch_size=3)
        straight = campaigns.run(spec)
        with pytest.raises(KeyboardInterrupt):
            campaigns.run(spec, executor=StopAfter(1),
                          checkpoint=tmp_path)
        resumed = campaigns.run(spec, checkpoint=tmp_path)
        assert resumed.counts == straight.counts
        for key, value in straight.estimates.items():
            np.testing.assert_equal(resumed.estimates[key], value)

    def test_resume_endtoend_outcomes(self, tmp_path):
        spec = campaigns.EndToEndSpec(distance=5, p=1e-2, shots=12,
                                      onset=30, cycles=60, c_win=20,
                                      n_th=4, seed=29, batch_size=4)
        straight = campaigns.run(spec)
        with pytest.raises(KeyboardInterrupt):
            campaigns.run(spec, executor=StopAfter(1),
                          checkpoint=tmp_path)
        resumed = campaigns.run(spec, checkpoint=tmp_path)
        assert resumed.counts == straight.counts

    def test_fully_restored_campaign_computes_nothing(self, tmp_path):
        spec = _memory_spec()
        campaigns.run(spec, checkpoint=tmp_path)

        class Exploding(campaigns.Executor):
            def run_chunks(self, kernel, packing, tasks):
                raise AssertionError("no chunk should need computing")
                yield  # pragma: no cover

        restored = campaigns.run(spec, executor=Exploding(),
                                 checkpoint=tmp_path)
        assert restored.provenance.resumed_chunks == 6
        assert restored.counts == campaigns.run(spec).counts

    def test_early_stop_parity_across_resume(self, tmp_path):
        spec = _memory_spec(samples=5000, batch_size=128,
                            target_rel_width=0.5, seed=3)
        straight = campaigns.run(spec)
        assert straight.counts["samples"] < 5000  # it stops early
        try:
            campaigns.run(spec, executor=StopAfter(1),
                          checkpoint=tmp_path)
        except KeyboardInterrupt:
            pass  # killed before the stopping chunk
        resumed = campaigns.run(spec, checkpoint=tmp_path)
        # Resumed run ingests restored chunks through the same early-stop
        # predicate: same stopping chunk, same outcome counts.  (Cache
        # hit/miss counters are process-local warm-state and excluded —
        # the PR 3 precedent: stats-only, never outcomes.)
        outcome_keys = ("failures", "samples", "requested")
        for key in outcome_keys:
            assert resumed.counts[key] == straight.counts[key]
        assert resumed.estimates == straight.estimates

    def test_pool_executor_shares_the_shard(self, tmp_path):
        spec = _memory_spec(samples=64, batch_size=8)
        straight = campaigns.run(spec)
        with pytest.raises(KeyboardInterrupt):
            campaigns.run(spec, executor=StopAfter(3),
                          checkpoint=tmp_path)
        resumed = campaigns.run(
            spec, executor=campaigns.ProcessPoolExecutor(2),
            checkpoint=tmp_path)
        assert resumed.provenance.resumed_chunks == 3
        assert resumed.counts["failures"] == straight.counts["failures"]


class TestDurability:
    def test_fsync_knob_gates_the_fsync(self, tmp_path, monkeypatch):
        from repro import config
        from repro.campaigns import checkpoint as cp

        calls = []
        real_fsync = cp.os.fsync
        monkeypatch.setattr(cp.os, "fsync",
                            lambda fd: (calls.append(fd), real_fsync(fd)))
        spec = _memory_spec()
        monkeypatch.setenv(config.ENV_CHECKPOINT_FSYNC, "1")
        campaigns.run(spec, checkpoint=tmp_path / "durable")
        assert len(calls) == 6  # one fsync per appended chunk record

        calls.clear()
        monkeypatch.setenv(config.ENV_CHECKPOINT_FSYNC, "0")
        fast = campaigns.run(spec, checkpoint=tmp_path / "fast")
        assert calls == []  # flushed but never fsynced
        # ... and the knob changes durability only, not the records:
        resumed = campaigns.run(spec, checkpoint=tmp_path / "fast")
        assert resumed.provenance.resumed_chunks == 6
        assert resumed.counts == fast.counts

    def test_torn_header_recomputes_from_scratch(self, tmp_path):
        # Beyond the truncated-*final*-line case: a writer killed while
        # laying down the very first (header) line leaves a shard whose
        # only line is torn.  That must read as "no finished chunks",
        # recompute everything, and self-heal on the next append.
        spec = _memory_spec()
        straight = campaigns.run(spec)
        campaigns.run(spec, checkpoint=tmp_path)
        path = _shard_path(tmp_path, spec)
        header = path.read_text().splitlines()[0]
        path.write_text(header[:25])  # torn header, no newline
        resumed = campaigns.run(spec, checkpoint=tmp_path)
        assert resumed.provenance.resumed_chunks == 0
        assert resumed.counts["failures"] == straight.counts["failures"]
        healed = campaigns.run(spec, checkpoint=tmp_path)
        assert healed.provenance.resumed_chunks == 6


class TestShardRejection:
    def test_truncated_final_line_recomputes(self, tmp_path):
        spec = _memory_spec()
        straight = campaigns.run(spec)
        campaigns.run(spec, checkpoint=tmp_path)
        path = _shard_path(tmp_path, spec)
        lines = path.read_text().splitlines()
        # Simulate a kill mid-write: chop the last record in half.
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:20])
        resumed = campaigns.run(spec, checkpoint=tmp_path)
        assert resumed.provenance.resumed_chunks == 5
        assert resumed.counts["failures"] == straight.counts["failures"]

    def test_repeated_kills_mid_write_never_brick_the_shard(self, tmp_path):
        # A kill mid-write leaves a partial line with no newline; the
        # next append must truncate it rather than weld the new record
        # onto the garbage (which would move the damage mid-file and
        # make every later load() raise).
        spec = _memory_spec()
        straight = campaigns.run(spec)
        path = _shard_path(tmp_path, spec)
        for _ in range(3):  # kill, resume, kill, resume, ...
            try:
                campaigns.run(spec, executor=StopAfter(1),
                              checkpoint=tmp_path)
            except KeyboardInterrupt:
                pass
            text = path.read_text()
            path.write_text(text.rstrip("\n")[:-15])  # chop mid-record
        resumed = campaigns.run(spec, checkpoint=tmp_path)
        assert resumed.counts["failures"] == straight.counts["failures"]
        # The healed shard is fully well-formed again.
        final = campaigns.run(spec, checkpoint=tmp_path)
        assert final.provenance.resumed_chunks == 6

    def test_resume_adopts_recorded_batch_size(self, tmp_path):
        # batch_size=None resolves per executor (whole request = 150,
        # kernel fan-out default = 64).  A resume under a *different*
        # executor must adopt the shard's recorded plan and finish
        # bit-identically instead of rejecting the shard.
        spec = campaigns.EndToEndSpec(distance=5, p=1e-2, shots=150,
                                      onset=30, cycles=60, c_win=20,
                                      n_th=4, seed=31)  # batch_size=None
        chunked = campaigns.InlineExecutor(whole_request=False)
        straight = campaigns.run(spec, executor=chunked)
        assert straight.provenance.batch_size == 64  # [64, 64, 22] plan
        with pytest.raises(KeyboardInterrupt):
            campaigns.run(spec,
                          executor=StopAfter(1, whole_request=False),
                          checkpoint=tmp_path)
        # Resume under the whole-request executor (would resolve 150).
        resumed = campaigns.run(spec,
                                executor=campaigns.InlineExecutor(),
                                checkpoint=tmp_path)
        assert resumed.provenance.batch_size == 64  # adopted, not 150
        assert resumed.provenance.resumed_chunks == 1
        assert resumed.counts == straight.counts

    def test_garbage_mid_file_rejected(self, tmp_path):
        spec = _memory_spec()
        campaigns.run(spec, checkpoint=tmp_path)
        path = _shard_path(tmp_path, spec)
        lines = path.read_text().splitlines()
        lines[2] = "{corrupted"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            campaigns.run(spec, checkpoint=tmp_path)

    def test_crc_mismatch_rejected(self, tmp_path):
        spec = _memory_spec()
        campaigns.run(spec, checkpoint=tmp_path)
        path = _shard_path(tmp_path, spec)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["data"][0] ^= 1  # silent bit flip in the payload
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="CRC"):
            campaigns.run(spec, checkpoint=tmp_path)

    def test_foreign_spec_shard_rejected(self, tmp_path):
        spec = _memory_spec()
        other = _memory_spec(seed=18)
        campaigns.run(other, checkpoint=tmp_path)
        # An operator mistake: renaming another spec's shard onto ours.
        _shard_path(tmp_path, other).rename(_shard_path(tmp_path, spec))
        with pytest.raises(CheckpointError, match="belongs to spec"):
            campaigns.run(spec, checkpoint=tmp_path)

    def test_duplicate_chunk_rejected(self, tmp_path):
        spec = _memory_spec()
        campaigns.run(spec, checkpoint=tmp_path)
        path = _shard_path(tmp_path, spec)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines + [lines[1]]) + "\n")
        with pytest.raises(CheckpointError, match="duplicate"):
            campaigns.run(spec, checkpoint=tmp_path)

    def test_stale_plan_rejected(self, tmp_path):
        # A shard recorded under one plan must not feed a different one:
        # same file, hand-edited chunk sizes.
        spec = _memory_spec()
        campaigns.run(spec, checkpoint=tmp_path)
        path = _shard_path(tmp_path, spec)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["index"] = 99
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="plan"):
            campaigns.run(spec, checkpoint=tmp_path)

    def test_wrong_chunk_size_rejected(self, tmp_path):
        spec = _memory_spec()
        campaigns.run(spec, checkpoint=tmp_path)
        path = _shard_path(tmp_path, spec)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["data"] = record["data"][:-1]
        record["shape"] = [len(record["data"])]
        from repro.campaigns.checkpoint import _payload_crc
        record["crc"] = _payload_crc(record["dtype"], record["shape"],
                                     record["data"])
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="expects"):
            campaigns.run(spec, checkpoint=tmp_path)

    def test_recorded_batch_size_conflicting_with_pinned_rejected(
            self, tmp_path):
        # The spec pins batch_size=16; a shard whose (CRC-less) header
        # claims another chunk size must be rejected, never adopted.
        spec = _memory_spec()
        campaigns.run(spec, checkpoint=tmp_path)
        path = _shard_path(tmp_path, spec)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["batch_size"] = 32
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="pins"):
            campaigns.run(spec, checkpoint=tmp_path)

    def test_header_records_the_spec(self, tmp_path):
        spec = _memory_spec()
        campaigns.run(spec, checkpoint=tmp_path)
        header = json.loads(
            _shard_path(tmp_path, spec).read_text().splitlines()[0])
        assert header["type"] == "header"
        assert header["spec_hash"] == campaigns.spec_hash(spec)
        assert campaigns.spec_from_dict(header["spec"]) == spec

    def test_store_accepts_path_or_instance(self, tmp_path):
        spec = _memory_spec(samples=16)
        a = campaigns.run(spec, checkpoint=str(tmp_path / "a"))
        b = campaigns.run(spec, checkpoint=CheckpointStore(tmp_path / "b"))
        assert a.counts == b.counts
        assert (tmp_path / "a").exists() and (tmp_path / "b").exists()
