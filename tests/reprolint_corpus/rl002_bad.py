"""RL002 corpus: a seam-routed kernel touching host NumPy directly.

The corpus manifest scopes ``*_packed`` and ``pack_lanes`` and allows
only ``np.packbits`` as a documented host fast path.
"""

import numpy as np

from repro.sim import backend


def xor_scan_packed(words):
    acc = np.bitwise_xor.accumulate(words, axis=0)   # RL002: host-pinned
    return np.moveaxis(acc, 0, -1)                   # RL002: host-pinned


def pack_lanes(bits):
    lanes = np.ascontiguousarray(bits)               # RL002: host-pinned
    return np.packbits(lanes, axis=-1)               # allowed fast path


def host_summary(words):
    # Not seam-scoped: plain host helper, free to use numpy.
    xp = backend.get_array_module(words)
    del xp
    return np.count_nonzero(words)
